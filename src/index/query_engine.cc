#include "index/query_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <optional>
#include <queue>

#include "core/distance.h"
#include "quant/lbd.h"
#include "quant/rowq.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace sofa {
namespace index {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

// Shared k-NN result set: a bounded max-heap under a mutex plus an atomic
// mirror of the pruning bound (k-th best squared distance) for cheap reads
// from all workers.
class ResultSet {
 public:
  explicit ResultSet(std::size_t k) : k_(k) { bsf_sq_.store(kInf); }

  /// Current pruning bound (squared distance); +inf until k results exist.
  float bsf_sq() const { return bsf_sq_.load(std::memory_order_relaxed); }

  /// Offers a candidate; keeps the k smallest.
  void Update(std::uint32_t id, float dist_sq) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (heap_.size() < k_) {
      heap_.push(Entry{dist_sq, id});
      if (heap_.size() == k_) {
        bsf_sq_.store(heap_.top().dist_sq, std::memory_order_relaxed);
      }
      return;
    }
    if (dist_sq < heap_.top().dist_sq) {
      heap_.pop();
      heap_.push(Entry{dist_sq, id});
      bsf_sq_.store(heap_.top().dist_sq, std::memory_order_relaxed);
    }
  }

  /// Drains into a sorted (ascending) neighbor list.
  std::vector<Neighbor> Finish() {
    std::vector<Neighbor> result;
    result.reserve(heap_.size());
    while (!heap_.empty()) {
      result.push_back(
          Neighbor{heap_.top().id, std::sqrt(heap_.top().dist_sq)});
      heap_.pop();
    }
    std::reverse(result.begin(), result.end());
    return result;
  }

 private:
  struct Entry {
    float dist_sq;
    std::uint32_t id;
    bool operator<(const Entry& other) const {  // max-heap on distance
      return dist_sq < other.dist_sq;
    }
  };

  std::size_t k_;
  std::priority_queue<Entry> heap_;
  std::atomic<float> bsf_sq_;
  std::mutex mutex_;
};

struct LeafEntry {
  float lbd_sq;
  const Node* leaf;
  bool operator>(const LeafEntry& other) const {
    return lbd_sq > other.lbd_sq;
  }
};

// One lock-protected min-priority queue of candidate leaves (the paper uses
// #cores of these, accessed under locks).
class LeafQueue {
 public:
  void Push(LeafEntry entry) {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(entry);
  }

  std::optional<LeafEntry> PopMin() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) {
      return std::nullopt;
    }
    const LeafEntry top = queue_.top();
    queue_.pop();
    return top;
  }

  // "Abandon": everything still queued is at least as far as the entry that
  // triggered abandonment, so it can all be pruned at once. Returns the
  // number of entries dropped.
  std::size_t Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t dropped = queue_.size();
    queue_ = {};
    return dropped;
  }

 private:
  std::mutex mutex_;
  std::priority_queue<LeafEntry, std::vector<LeafEntry>,
                      std::greater<LeafEntry>>
      queue_;
};

// Per-query immutable context.
struct QueryContext {
  const TreeIndex* index;
  const float* query;
  std::vector<float> projection;   // query in summary space
  std::vector<std::uint8_t> word;  // query's own word
  // ε-approximation: lower bounds are inflated by this factor before being
  // compared against the BSF; 1.0 = exact search.
  float lbd_inflation_sq = 1.0f;
  // Compressed pruning tier (engaged when the index carries a rowq
  // sidecar): quantized-row lower bounds evaluated between the summary
  // LBD and the exact kernel.
  std::optional<quant::RowQuantView> rowq;
};

// The rowq tier: true when the quantized lower bound proves row `id`
// cannot be admitted at `bound`. Admission everywhere requires a strict
// d < bound, and the deflated bound never exceeds the float the exact
// kernel reports, so pruning at lb ≥ bound is answer-preserving bit for
// bit (ties included). The bound < kInf guard keeps the tier out of the
// heap-filling phase, where inflated products could overflow to +inf
// and compare ≥ an infinite bound.
inline bool RowqPrunes(const QueryContext& ctx, std::uint32_t id, float bound,
                       QueryProfile* profile) {
  if (!ctx.rowq || !(bound < kInf) || !ctx.rowq->prunable(id)) {
    return false;
  }
  ++profile->rowq_checked;
  // The kernel may stop scanning once its partial sum crosses the raw
  // threshold; the predicate below is applied to whatever (partial or
  // full) adjusted bound comes back, so the abandon point affects cost
  // only, never the decision's soundness.
  const float lb = ctx.rowq->LowerBoundEarlyAbandon(
      id, ctx.rowq->RawAbandonThreshold(bound, ctx.lbd_inflation_sq));
  if (lb * ctx.lbd_inflation_sq >= bound) {
    ++profile->rowq_pruned;
    return true;
  }
  return false;
}

// Scans every series of a leaf with the real distance only (approximate
// search seeding the BSF).
void ScanLeafExact(const QueryContext& ctx, const Node& leaf,
                   ResultSet* results, QueryProfile* profile) {
  const Dataset& data = ctx.index->data();
  for (std::size_t i = 0; i < leaf.leaf_size(); ++i) {
    const std::uint32_t id = leaf.series_ids[i];
    const float bound = results->bsf_sq();
    if (RowqPrunes(ctx, id, bound, profile)) {
      continue;
    }
    const float d = SquaredEuclideanEarlyAbandon(ctx.query, data.row(id),
                                                 data.length(), bound);
    ++profile->series_ed_computed;
    if (d < bound) {
      results->Update(id, d);
    }
  }
}

// Scans a leaf with the LBD → real-distance cascade (Algorithm 3 call site).
void ScanLeafPruned(const QueryContext& ctx, const Node& leaf,
                    ResultSet* results, QueryProfile* profile) {
  const Dataset& data = ctx.index->data();
  const quant::SummaryScheme& scheme = ctx.index->scheme();
  const std::size_t l = scheme.word_length();
  const float inflation = ctx.lbd_inflation_sq;
  for (std::size_t i = 0; i < leaf.leaf_size(); ++i) {
    const float bound = results->bsf_sq();
    const float lbd_sq = quant::LbdSquaredEarlyAbandon(
        scheme.table(), scheme.weights(), ctx.projection.data(),
        leaf.words.data() + i * l, bound / inflation);
    ++profile->series_lbd_checked;
    if (lbd_sq * inflation >= bound) {
      ++profile->series_lbd_pruned;
      continue;
    }
    const std::uint32_t id = leaf.series_ids[i];
    if (RowqPrunes(ctx, id, bound, profile)) {
      continue;
    }
    const float d = SquaredEuclideanEarlyAbandon(ctx.query, data.row(id),
                                                 data.length(), bound);
    ++profile->series_ed_computed;
    if (d < bound) {
      results->Update(id, d);
    }
  }
}

// Descends from `node` to the leaf matching the query's own word bits.
const Node* DescendToLeaf(const QueryContext& ctx, const Node* node) {
  const std::uint32_t bits = ctx.index->scheme().bits();
  while (!node->is_leaf()) {
    const std::size_t dim = node->split_dim;
    const std::uint32_t child_card = node->left->cards[dim];
    const std::uint32_t bit = (ctx.word[dim] >> (bits - child_card)) & 1u;
    node = bit == 0 ? node->left.get() : node->right.get();
  }
  return node;
}

// Approximate search (paper Section IV-C): the leaf the query itself would
// be stored in, or the most promising subtree when that root child is
// empty.
const Node* ApproximateLeaf(const QueryContext& ctx) {
  const TreeIndex& index = *ctx.index;
  const std::size_t root_bits = index.root_bits();
  const std::uint32_t bits = index.scheme().bits();
  std::uint32_t key = 0;
  for (std::size_t dim = 0; dim < root_bits; ++dim) {
    key = (key << 1) | (ctx.word[dim] >> (bits - 1));
  }
  const Node* start = index.root_child(key);
  if (start == nullptr) {
    float best_lbd = kInf;
    for (const auto& [subtree_key, node] : index.subtrees()) {
      const float lbd = quant::NodeLbdSquared(
          index.scheme().table(), index.scheme().weights(),
          ctx.projection.data(), node->prefixes.data(), node->cards.data());
      if (lbd < best_lbd) {
        best_lbd = lbd;
        start = node;
      }
    }
  }
  return start == nullptr ? nullptr : DescendToLeaf(ctx, start);
}

// DFS of one subtree, pruning by node LBD and spreading surviving leaves
// round-robin over the queues.
void CollectLeaves(const QueryContext& ctx, const Node* node,
                   const ResultSet& results, std::vector<LeafQueue>* queues,
                   std::atomic<std::size_t>* queue_cursor,
                   const Node* skip_leaf, QueryProfile* profile) {
  if (node->is_leaf() && node == skip_leaf) {
    return;  // already scanned exhaustively by the approximate phase
  }
  const quant::SummaryScheme& scheme = ctx.index->scheme();
  const float lbd_sq = quant::NodeLbdSquared(
      scheme.table(), scheme.weights(), ctx.projection.data(),
      node->prefixes.data(), node->cards.data());
  ++profile->nodes_visited;
  if (lbd_sq * ctx.lbd_inflation_sq >= results.bsf_sq()) {
    ++profile->nodes_pruned;  // prunes the entire subtree
    return;
  }
  if (node->is_leaf()) {
    const std::size_t qi =
        queue_cursor->fetch_add(1, std::memory_order_relaxed) %
        queues->size();
    (*queues)[qi].Push(LeafEntry{lbd_sq, node});
    ++profile->leaves_collected;
    return;
  }
  CollectLeaves(ctx, node->left.get(), results, queues, queue_cursor,
                skip_leaf, profile);
  CollectLeaves(ctx, node->right.get(), results, queues, queue_cursor,
                skip_leaf, profile);
}

// Builds the per-query context (projection + word).
QueryContext MakeContext(const TreeIndex* index, const float* query,
                         double epsilon) {
  const quant::SummaryScheme& scheme = index->scheme();
  const std::size_t l = scheme.word_length();
  QueryContext ctx;
  ctx.index = index;
  ctx.query = query;
  ctx.projection.resize(l);
  ctx.word.resize(l);
  const double inflation = (1.0 + epsilon) * (1.0 + epsilon);
  ctx.lbd_inflation_sq = static_cast<float>(inflation);
  auto scratch = scheme.NewScratch();
  scheme.Project(query, ctx.projection.data(), scratch.get());
  for (std::size_t dim = 0; dim < l; ++dim) {
    ctx.word[dim] = scheme.table().Quantize(dim, ctx.projection[dim]);
  }
  if (index->rowq() != nullptr) {
    ctx.rowq.emplace(index->rowq().get(), query);
  }
  return ctx;
}

}  // namespace

std::vector<Neighbor> QueryEngine::Search(const float* query, std::size_t k,
                                          double epsilon,
                                          QueryProfile* profile,
                                          std::size_t num_threads) const {
  const TreeIndex& index = *index_;
  const Dataset& data = index.data();
  if (data.empty() || k == 0) {
    return {};
  }
  SOFA_CHECK(epsilon >= 0.0);
  k = std::min(k, data.size());
  const QueryContext ctx = MakeContext(index_, query, epsilon);
  ResultSet results(k);
  QueryProfile local_profile;

  // Phase 1: approximate answer seeds the BSF.
  const Node* approx_leaf = ApproximateLeaf(ctx);
  if (approx_leaf != nullptr) {
    ScanLeafExact(ctx, *approx_leaf, &results, &local_profile);
  }

  ThreadPool* pool = index.pool();
  if (num_threads == 0) {
    num_threads = index.config().num_threads == 0
                      ? pool->size()
                      : index.config().num_threads;
  }
  const std::size_t num_queues = index.config().num_queues == 0
                                     ? num_threads
                                     : index.config().num_queues;

  // Phase 2: collect candidate leaves into the priority queues, using
  // exactly num_threads workers over dynamically handed-out subtree chunks.
  std::vector<LeafQueue> queues(num_queues);
  std::atomic<std::size_t> queue_cursor(0);
  const auto& subtrees = index.subtrees();
  std::mutex profile_mutex;
  {
    std::atomic<std::size_t> next_subtree(0);
    constexpr std::size_t kGrain = 4;
    ParallelRun(pool, num_threads, [&](std::size_t) {
      QueryProfile worker_profile;
      while (true) {
        const std::size_t begin = next_subtree.fetch_add(kGrain);
        if (begin >= subtrees.size()) {
          break;
        }
        const std::size_t end = std::min(subtrees.size(), begin + kGrain);
        for (std::size_t s = begin; s < end; ++s) {
          CollectLeaves(ctx, subtrees[s].second, results, &queues,
                        &queue_cursor, approx_leaf, &worker_profile);
        }
      }
      std::lock_guard<std::mutex> lock(profile_mutex);
      local_profile.Merge(worker_profile);
    });
  }

  // Phase 3: workers drain the queues with BSF pruning and abandonment.
  ParallelRun(pool, num_threads, [&](std::size_t worker) {
    QueryProfile worker_profile;
    for (std::size_t offset = 0; offset < num_queues; ++offset) {
      LeafQueue& queue = queues[(worker + offset) % num_queues];
      while (true) {
        const std::optional<LeafEntry> entry = queue.PopMin();
        if (!entry.has_value()) {
          break;  // queue exhausted, move to the next one
        }
        if (entry->lbd_sq * ctx.lbd_inflation_sq >= results.bsf_sq()) {
          // All remaining entries are at least as far: abandon the queue.
          worker_profile.leaves_abandoned += 1 + queue.Clear();
          break;
        }
        ScanLeafPruned(ctx, *entry->leaf, &results, &worker_profile);
      }
    }
    std::lock_guard<std::mutex> lock(profile_mutex);
    local_profile.Merge(worker_profile);
  });

  if (profile != nullptr) {
    profile->Merge(local_profile);
  }
  return results.Finish();
}

std::vector<Neighbor> QueryEngine::SearchLeafOnly(const float* query,
                                                  std::size_t k) const {
  const TreeIndex& index = *index_;
  if (index.data().empty() || k == 0) {
    return {};
  }
  k = std::min(k, index.data().size());
  const QueryContext ctx = MakeContext(index_, query, 0.0);
  const Node* leaf = ApproximateLeaf(ctx);
  if (leaf == nullptr) {
    return {};
  }
  ResultSet results(std::min(k, leaf->leaf_size()));
  QueryProfile profile;
  ScanLeafExact(ctx, *leaf, &results, &profile);
  return results.Finish();
}

}  // namespace index
}  // namespace sofa
