#include "index/tree_index.h"

#include <algorithm>

#include "index/index_builder.h"
#include "index/query_engine.h"
#include "service/executor.h"
#include "util/check.h"

namespace sofa {
namespace index {

TreeIndex::TreeIndex(const Dataset* data, const quant::SummaryScheme* scheme,
                     const IndexConfig& config, ThreadPool* pool)
    : data_(data), scheme_(scheme), config_(config), pool_(pool) {
  SOFA_CHECK(data_ != nullptr);
  SOFA_CHECK(scheme_ != nullptr);
  SOFA_CHECK(pool_ != nullptr);
  SOFA_CHECK_EQ(data_->length(), scheme_->series_length());
  SOFA_CHECK(config_.leaf_capacity > 0);
  if (config_.num_threads == 0) {
    config_.num_threads = pool_->size();
  }
  if (config_.num_queues == 0) {
    config_.num_queues = config_.num_threads;
  }
  const std::size_t max_root_bits =
      std::min<std::size_t>(scheme_->word_length(), 16);
  if (config_.root_bits != 0) {
    root_bits_ = std::min(config_.root_bits, max_root_bits);
  } else {
    // Aim for root children holding about one leaf's worth of series.
    std::size_t bits = 1;
    while ((std::size_t{1} << bits) * config_.leaf_capacity < data_->size() &&
           bits < max_root_bits) {
      ++bits;
    }
    root_bits_ = bits;
  }

  BuildResult result =
      BuildTree(*data_, *scheme_, config_, root_bits_, pool_);
  root_children_ = std::move(result.root_children);
  subtrees_ = std::move(result.subtrees);
  build_stats_ = result.stats;
}

TreeIndex::TreeIndex(FromPartsTag, const Dataset* data,
                     const quant::SummaryScheme* scheme,
                     const IndexConfig& config, ThreadPool* pool,
                     std::vector<std::unique_ptr<Node>> root_children,
                     std::size_t root_bits)
    : data_(data),
      scheme_(scheme),
      config_(config),
      pool_(pool),
      root_bits_(root_bits),
      root_children_(std::move(root_children)) {
  SOFA_CHECK(data_ != nullptr);
  SOFA_CHECK(scheme_ != nullptr);
  SOFA_CHECK(pool_ != nullptr);
  SOFA_CHECK_EQ(root_children_.size(), std::size_t{1} << root_bits_);
  if (config_.num_threads == 0) {
    config_.num_threads = pool_->size();
  }
  if (config_.num_queues == 0) {
    config_.num_queues = config_.num_threads;
  }
  for (std::size_t key = 0; key < root_children_.size(); ++key) {
    if (root_children_[key] != nullptr) {
      subtrees_.emplace_back(static_cast<std::uint32_t>(key),
                             root_children_[key].get());
    }
  }
}

std::unique_ptr<TreeIndex> TreeIndex::FromParts(
    const Dataset* data, const quant::SummaryScheme* scheme,
    const IndexConfig& config, ThreadPool* pool,
    std::vector<std::unique_ptr<Node>> root_children,
    std::size_t root_bits) {
  return std::unique_ptr<TreeIndex>(
      new TreeIndex(FromPartsTag{}, data, scheme, config, pool,
                    std::move(root_children), root_bits));
}

TreeIndex::~TreeIndex() = default;

void QueryProfile::Merge(const QueryProfile& other) {
  nodes_visited += other.nodes_visited;
  nodes_pruned += other.nodes_pruned;
  leaves_collected += other.leaves_collected;
  leaves_abandoned += other.leaves_abandoned;
  series_lbd_checked += other.series_lbd_checked;
  series_lbd_pruned += other.series_lbd_pruned;
  series_ed_computed += other.series_ed_computed;
  candidates_filtered += other.candidates_filtered;
  rowq_checked += other.rowq_checked;
  rowq_pruned += other.rowq_pruned;
}

Neighbor TreeIndex::Search1Nn(const float* query) const {
  const std::vector<Neighbor> result = SearchKnn(query, 1);
  SOFA_CHECK(!result.empty()) << "1-NN query on an empty index";
  return result[0];
}

std::vector<Neighbor> TreeIndex::SearchKnn(const float* query, std::size_t k,
                                           QueryProfile* profile) const {
  return QueryEngine(this).Search(query, k, /*epsilon=*/0.0, profile);
}

std::vector<Neighbor> TreeIndex::SearchKnnApproximate(
    const float* query, std::size_t k, double epsilon,
    QueryProfile* profile) const {
  return QueryEngine(this).Search(query, k, epsilon, profile);
}

std::vector<Neighbor> TreeIndex::SearchKnnLeafOnly(const float* query,
                                                   std::size_t k) const {
  return QueryEngine(this).SearchLeafOnly(query, k);
}

std::vector<std::vector<Neighbor>> TreeIndex::SearchKnnBatch(
    const Dataset& queries, std::size_t k) const {
  SOFA_CHECK_EQ(queries.length(), data_->length());
  // Cross-query parallelism is the serving layer's job; this entry point
  // is a thin convenience over its executor.
  std::vector<std::vector<Neighbor>> results(queries.size());
  std::vector<service::QueryTask> tasks(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    tasks[q].query = queries.row(q);
    tasks[q].k = k;
    tasks[q].result = &results[q];
  }
  service::RunThroughputBatch(*this, &tasks, pool_,
                              config_.num_threads);
  return results;
}

TreeStats TreeIndex::ComputeStats() const {
  TreeStats stats;
  stats.num_subtrees = subtrees_.size();
  std::size_t depth_sum = 0;
  for (const auto& [key, node] : subtrees_) {
    AccumulateStats(*node, 0, &stats, &depth_sum);
  }
  if (stats.num_leaves > 0) {
    stats.avg_depth = static_cast<double>(depth_sum) /
                      static_cast<double>(stats.num_leaves);
    stats.avg_leaf_size = static_cast<double>(stats.total_series) /
                          static_cast<double>(stats.num_leaves);
  }
  return stats;
}

}  // namespace index
}  // namespace sofa
