// Index persistence: save a built TreeIndex (including its summarization
// scheme) to a binary file and reload it against the same dataset.
//
// The raw series data is *not* embedded — like the paper's in-memory
// setting, the index references an external collection; persist that with
// core/io (WriteRawF32/WriteFvecs) if needed. The loader validates the
// collection's shape and the file's structure and returns std::nullopt on
// any mismatch.
//
// Format (little-endian): magic "SOFAIDX1", scheme kind + payload
// (iSAX parameters, or the full SfaSpec with learned edges), index
// configuration, dataset shape, then the forest in preorder.

#ifndef SOFA_INDEX_SERIALIZATION_H_
#define SOFA_INDEX_SERIALIZATION_H_

#include <memory>
#include <optional>
#include <string>

#include "index/tree_index.h"

namespace sofa {
namespace index {

/// A deserialized index with the scheme it owns.
struct LoadedIndex {
  std::unique_ptr<quant::SummaryScheme> scheme;
  std::unique_ptr<TreeIndex> tree;
};

/// Serializes `index` (tree + scheme + config). Supports SaxScheme- and
/// SfaScheme-based indexes; returns false on I/O failure or an
/// unrecognized scheme type.
bool SaveIndex(const TreeIndex& index, const std::string& path);

/// Loads an index previously saved with SaveIndex; `data` must be the
/// identical collection (shape-checked) and must outlive the result.
std::optional<LoadedIndex> LoadIndex(const std::string& path,
                                     const Dataset* data, ThreadPool* pool);

}  // namespace index
}  // namespace sofa

#endif  // SOFA_INDEX_SERIALIZATION_H_
