// Exact GEMINI query answering over a TreeIndex (paper Section IV-C).
//
// Per query:
//   1. Approximate search: descend the tree along the query's own word to
//      one leaf and compute real distances there — the initial best-so-far
//      (BSF).
//   2. Collect: walk all subtrees in parallel; prune nodes whose summary
//      LBD ≥ BSF; surviving leaves go into a fixed set of lock-protected
//      priority queues ordered by leaf LBD.
//   3. Process: workers repeatedly pop the minimum-LBD leaf of a queue. If
//      its LBD ≥ BSF the whole queue is abandoned (everything behind it is
//      farther). Otherwise the leaf is scanned: per series a SIMD
//      early-abandoning LBD, then, if still promising, the early-abandoning
//      real distance; improvements update the shared BSF / k-NN heap.

#ifndef SOFA_INDEX_QUERY_ENGINE_H_
#define SOFA_INDEX_QUERY_ENGINE_H_

#include <cstddef>
#include <vector>

#include "index/tree_index.h"

namespace sofa {
namespace index {

/// Stateless facade; one Search call = one exact (or ε-approximate) query,
/// internally parallelized on the index's thread pool.
class QueryEngine {
 public:
  explicit QueryEngine(const TreeIndex* index) : index_(index) {}

  /// k-NN ascending by distance (Euclidean, not squared). With epsilon > 0
  /// every answer is within (1+epsilon) of the exact distance; 0 = exact.
  /// `profile` (optional) receives merged work counters. `num_threads`
  /// overrides the index configuration (0 = use it); batch mode passes 1.
  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               double epsilon = 0.0,
                               QueryProfile* profile = nullptr,
                               std::size_t num_threads = 0) const;

  /// Phase-1-only approximate answer (the query's own leaf).
  std::vector<Neighbor> SearchLeafOnly(const float* query,
                                       std::size_t k) const;

 private:
  const TreeIndex* index_;
};

}  // namespace index
}  // namespace sofa

#endif  // SOFA_INDEX_QUERY_ENGINE_H_
