// The tree index of SOFA/MESSI (paper Section IV).
//
// A TreeIndex is the MESSI tree structure made generic over the
// summarization: constructed with an SfaScheme it is the SOFA index, with a
// SaxScheme it is the MESSI baseline. Construction bulk-builds in parallel
// (symbolize → root partition → per-subtree splits); querying answers exact
// 1-NN/k-NN under Euclidean distance via the GEMINI protocol (approximate
// search for an initial best-so-far, then parallel pruned traversal with
// priority queues, SIMD lower bounds and early-abandoning real distances).

#ifndef SOFA_INDEX_TREE_INDEX_H_
#define SOFA_INDEX_TREE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "core/neighbor.h"
#include "index/node.h"
#include "quant/rowq.h"
#include "quant/summary_scheme.h"
#include "util/thread_pool.h"

namespace sofa {
namespace index {

/// How a full leaf chooses the dimension whose cardinality to increase.
enum class SplitPolicy {
  kBestBalance,  // dimension whose next bit splits the leaf most evenly
                 // (iSAX2.0-style balanced splitting; the default)
  kRoundRobin,   // cycle through dimensions
};

/// Index construction/query parameters; defaults follow the paper scaled to
/// test-sized datasets (the paper uses leaf_capacity 20000 at 10⁸ series).
struct IndexConfig {
  std::size_t leaf_capacity = 2000;
  std::size_t num_threads = 0;  // 0 = hardware concurrency
  std::size_t num_queues = 0;   // 0 = num_threads (paper: queue per core)
  SplitPolicy split_policy = SplitPolicy::kBestBalance;

  /// Root fan-out bits. MESSI fixes this to the word length (2^16 children
  /// at word length 16), which suits 10⁸-series collections; 0 (default)
  /// adapts to the collection size — ceil(log2(size / leaf_capacity)),
  /// clamped to [1, min(word_length, 16)] — so small collections keep
  /// usefully filled subtrees.
  std::size_t root_bits = 0;
};

/// Wall-clock breakdown of index construction (Fig. 7 phases).
struct BuildStats {
  double symbolize_seconds = 0.0;  // summarization of all series
  double partition_seconds = 0.0;  // root-key histogram + scatter
  double tree_seconds = 0.0;       // per-subtree splitting
  double total_seconds = 0.0;
};

/// Work counters of one query — the observable behind the paper's
/// pruning-power discussion (Section V-E).
struct QueryProfile {
  std::uint64_t nodes_visited = 0;      // node LBD evaluations
  std::uint64_t nodes_pruned = 0;       // subtrees cut at node level
  std::uint64_t leaves_collected = 0;   // queued for processing
  std::uint64_t leaves_abandoned = 0;   // dropped via queue abandonment
  std::uint64_t series_lbd_checked = 0; // per-series LBD evaluations
  std::uint64_t series_lbd_pruned = 0;  // series cut without touching data
  std::uint64_t series_ed_computed = 0; // real-distance evaluations
  std::uint64_t candidates_filtered = 0; // tombstoned candidates dropped at
                                         // the gather merge (deleted rows
                                         // still present in a tree)
  std::uint64_t rowq_checked = 0;  // quantized-row lower-bound evaluations
  std::uint64_t rowq_pruned = 0;   // series cut by the rowq tier (survived
                                   // the summary LBD, never reached the
                                   // exact kernel)

  /// Fraction of LBD-checked series pruned before any raw-data access.
  double SeriesPruningRatio() const {
    return series_lbd_checked == 0
               ? 0.0
               : static_cast<double>(series_lbd_pruned) /
                     static_cast<double>(series_lbd_checked);
  }

  /// Merges counters of another (per-worker) profile.
  void Merge(const QueryProfile& other);
};

/// The index. Immutable and thread-safe after construction; the dataset and
/// scheme must outlive it. Queries are answered one at a time (the paper's
/// exploratory-analysis setting), each internally parallelized.
class TreeIndex {
 public:
  /// Builds the index over z-normalized `data` with `scheme`, using
  /// `pool` (must have ≥ config.num_threads workers available).
  TreeIndex(const Dataset* data, const quant::SummaryScheme* scheme,
            const IndexConfig& config, ThreadPool* pool);

  ~TreeIndex();
  TreeIndex(const TreeIndex&) = delete;
  TreeIndex& operator=(const TreeIndex&) = delete;

  /// Exact nearest neighbor of `query` (length() floats, z-normalized).
  Neighbor Search1Nn(const float* query) const;

  /// Exact k nearest neighbors, ascending by distance. k is clamped to the
  /// collection size. `profile`, if given, receives the work counters.
  std::vector<Neighbor> SearchKnn(const float* query, std::size_t k,
                                  QueryProfile* profile = nullptr) const;

  /// ε-approximate k-NN: every reported neighbor is within (1+epsilon) of
  /// the corresponding exact distance (GEMINI pruning with the lower bound
  /// inflated by (1+epsilon) — the paper's future-work direction).
  /// epsilon = 0 is the exact search.
  std::vector<Neighbor> SearchKnnApproximate(
      const float* query, std::size_t k, double epsilon,
      QueryProfile* profile = nullptr) const;

  /// The paper's "Approximate Search" phase alone: descend to the query's
  /// own leaf and return its best candidates — no guarantee, but typically
  /// close, and the seed of every exact search.
  std::vector<Neighbor> SearchKnnLeafOnly(const float* query,
                                          std::size_t k) const;

  /// Throughput mode: answers a batch of queries in parallel *across*
  /// queries (each query runs single-threaded), complementing the paper's
  /// sequential latency-oriented protocol. result[i] answers
  /// queries.row(i); exact.
  std::vector<std::vector<Neighbor>> SearchKnnBatch(const Dataset& queries,
                                                    std::size_t k) const;

  /// Structural statistics (Fig. 8).
  TreeStats ComputeStats() const;

  /// Construction timing breakdown (Fig. 7).
  const BuildStats& build_stats() const { return build_stats_; }

  const Dataset& data() const { return *data_; }
  const quant::SummaryScheme& scheme() const { return *scheme_; }
  const IndexConfig& config() const { return config_; }
  ThreadPool* pool() const { return pool_; }

  /// Number of bits of the root fan-out (min(word_length, 16)).
  std::size_t root_bits() const { return root_bits_; }

  /// Attaches a quantized-row sidecar (quant::RowQuant over the same
  /// `data`, local row i aligned with data().row(i)). Queries then run
  /// the compressed pruning tier between the per-series LBD and the
  /// exact kernel; answers stay bit-identical to the detached
  /// configuration. Not thread-safe: attach before publishing the index
  /// to queries. Null detaches.
  void AttachRowQuant(std::shared_ptr<const quant::RowQuant> rowq) {
    rowq_ = std::move(rowq);
  }
  const std::shared_ptr<const quant::RowQuant>& rowq() const { return rowq_; }

  /// Non-empty root children, as (root key, subtree) pairs.
  const std::vector<std::pair<std::uint32_t, Node*>>& subtrees() const {
    return subtrees_;
  }

  /// Root child for a key, or nullptr — also for keys outside the root
  /// fan-out [0, 2^root_bits): an out-of-range key has no child, it is
  /// not undefined behavior (callers feed externally derived keys here).
  const Node* root_child(std::uint32_t key) const {
    return key < root_children_.size() ? root_children_[key].get() : nullptr;
  }

  /// Reassembles an index from deserialized parts (LoadIndex's back door);
  /// `data` must be the collection the index was originally built over and
  /// `root_children` must be sized 2^root_bits.
  static std::unique_ptr<TreeIndex> FromParts(
      const Dataset* data, const quant::SummaryScheme* scheme,
      const IndexConfig& config, ThreadPool* pool,
      std::vector<std::unique_ptr<Node>> root_children,
      std::size_t root_bits);

 private:
  struct FromPartsTag {};
  TreeIndex(FromPartsTag, const Dataset* data,
            const quant::SummaryScheme* scheme, const IndexConfig& config,
            ThreadPool* pool,
            std::vector<std::unique_ptr<Node>> root_children,
            std::size_t root_bits);

  friend class QueryEngine;

  const Dataset* data_;
  const quant::SummaryScheme* scheme_;
  IndexConfig config_;
  ThreadPool* pool_;
  std::size_t root_bits_;
  BuildStats build_stats_;

  // Dense root fan-out (size 2^root_bits_) plus the compact non-empty list.
  std::vector<std::unique_ptr<Node>> root_children_;
  std::vector<std::pair<std::uint32_t, Node*>> subtrees_;

  // Optional compressed pruning tier (null = tier off).
  std::shared_ptr<const quant::RowQuant> rowq_;
};

}  // namespace index
}  // namespace sofa

#endif  // SOFA_INDEX_TREE_INDEX_H_
