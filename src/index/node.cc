#include "index/node.h"

#include <algorithm>

namespace sofa {
namespace index {

void AccumulateStats(const Node& node, std::size_t depth, TreeStats* stats,
                     std::size_t* depth_sum) {
  if (node.is_leaf()) {
    ++stats->num_leaves;
    stats->total_series += node.leaf_size();
    stats->max_depth = std::max(stats->max_depth, depth);
    *depth_sum += depth;
    return;
  }
  ++stats->num_inner;
  AccumulateStats(*node.left, depth + 1, stats, depth_sum);
  AccumulateStats(*node.right, depth + 1, stats, depth_sum);
}

}  // namespace index
}  // namespace sofa
