#include "index/index_builder.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sofa {
namespace index {
namespace {

// Everything one subtree build needs; shared read-only across tasks except
// for the disjoint id spans each subtree owns.
struct BuildContext {
  const Dataset* data;
  const quant::SummaryScheme* scheme;
  const IndexConfig* config;
  const std::uint8_t* words;  // N × l full-cardinality words
  std::uint32_t* ids;         // partitioned id array (disjoint spans)
  std::size_t word_length;
  std::uint32_t bits;
};

// The bit a split on `dim` would test for a node whose current cardinality
// on that dimension is `card`: the next-most-significant symbol bit.
inline std::uint32_t NextBit(const std::uint8_t* word, std::size_t dim,
                             std::uint32_t card, std::uint32_t bits) {
  return (word[dim] >> (bits - card - 1)) & 1u;
}

// Number of series in [begin, end) whose next bit on `dim` is 1.
std::size_t CountOnes(const BuildContext& ctx, std::size_t begin,
                      std::size_t end, std::size_t dim, std::uint32_t card) {
  std::size_t ones = 0;
  for (std::size_t i = begin; i < end; ++i) {
    ones += NextBit(ctx.words + ctx.ids[i] * ctx.word_length, dim, card,
                    ctx.bits);
  }
  return ones;
}

// Chooses the split dimension, or returns kNoSplit if every dimension is
// either at full cardinality or splits degenerately (all series on one
// side) — then the leaf stays oversized (duplicate-heavy data).
std::uint16_t ChooseSplitDim(const BuildContext& ctx, const Node& node,
                             std::size_t begin, std::size_t end) {
  const std::size_t count = end - begin;
  const std::size_t l = ctx.word_length;
  if (ctx.config->split_policy == SplitPolicy::kRoundRobin) {
    const std::size_t start =
        node.split_dim == kNoSplit ? 0 : (node.split_dim + 1) % l;
    for (std::size_t step = 0; step < l; ++step) {
      const std::size_t dim = (start + step) % l;
      if (node.cards[dim] >= ctx.bits) {
        continue;
      }
      const std::size_t ones =
          CountOnes(ctx, begin, end, dim, node.cards[dim]);
      if (ones > 0 && ones < count) {
        return static_cast<std::uint16_t>(dim);
      }
    }
    return kNoSplit;
  }
  // Best balance: minimize |ones − count/2| over non-degenerate splits.
  std::uint16_t best_dim = kNoSplit;
  std::size_t best_imbalance = count + 1;
  for (std::size_t dim = 0; dim < l; ++dim) {
    if (node.cards[dim] >= ctx.bits) {
      continue;
    }
    const std::size_t ones = CountOnes(ctx, begin, end, dim, node.cards[dim]);
    if (ones == 0 || ones == count) {
      continue;
    }
    const std::size_t imbalance =
        ones > count - ones ? 2 * ones - count : count - 2 * ones;
    if (imbalance < best_imbalance) {
      best_imbalance = imbalance;
      best_dim = static_cast<std::uint16_t>(dim);
    }
  }
  return best_dim;
}

// Fills `node` as a leaf over ids[begin, end).
void FillLeaf(const BuildContext& ctx, Node* node, std::size_t begin,
              std::size_t end) {
  const std::size_t count = end - begin;
  const std::size_t l = ctx.word_length;
  node->split_dim = kNoSplit;  // may hold the round-robin cursor until now
  node->series_ids.resize(count);
  node->words.resize(count * l);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t id = ctx.ids[begin + i];
    node->series_ids[i] = id;
    std::memcpy(node->words.data() + i * l, ctx.words + id * l, l);
  }
}

// Recursively builds the subtree of `node` over ids[begin, end).
void BuildNode(const BuildContext& ctx, Node* node, std::size_t begin,
               std::size_t end) {
  const std::size_t count = end - begin;
  if (count <= ctx.config->leaf_capacity) {
    FillLeaf(ctx, node, begin, end);
    return;
  }
  const std::uint16_t dim = ChooseSplitDim(ctx, *node, begin, end);
  if (dim == kNoSplit) {
    FillLeaf(ctx, node, begin, end);  // unsplittable: oversized leaf
    return;
  }
  const std::uint32_t card = node->cards[dim];
  // In-place partition: next-bit 0 first.
  std::uint32_t* first = ctx.ids + begin;
  std::uint32_t* last = ctx.ids + end;
  std::uint32_t* mid = std::partition(first, last, [&](std::uint32_t id) {
    return NextBit(ctx.words + id * ctx.word_length, dim, card, ctx.bits) ==
           0;
  });
  const std::size_t split_at = begin + static_cast<std::size_t>(mid - first);
  SOFA_DCHECK(split_at > begin && split_at < end);

  node->split_dim = dim;
  for (const int bit : {0, 1}) {
    auto child = std::make_unique<Node>(ctx.word_length);
    child->prefixes = node->prefixes;
    child->cards = node->cards;
    child->prefixes[dim] = static_cast<std::uint8_t>(
        (node->prefixes[dim] << 1) | static_cast<std::uint8_t>(bit));
    child->cards[dim] = static_cast<std::uint8_t>(card + 1);
    child->split_dim = dim;  // round-robin continues from here
    if (bit == 0) {
      node->left = std::move(child);
    } else {
      node->right = std::move(child);
    }
  }
  // Children inherit split_dim only as the round-robin cursor; reset to
  // kNoSplit semantics happens implicitly when they become leaves (is_leaf
  // checks children, not split_dim).
  BuildNode(ctx, node->left.get(), begin, split_at);
  BuildNode(ctx, node->right.get(), split_at, end);
}

}  // namespace

BuildResult BuildTree(const Dataset& data,
                      const quant::SummaryScheme& scheme,
                      const IndexConfig& config, std::size_t root_bits,
                      ThreadPool* pool) {
  SOFA_CHECK(pool != nullptr);
  BuildResult result;
  const std::size_t n_series = data.size();
  const std::size_t l = scheme.word_length();
  const std::uint32_t bits = scheme.bits();
  const std::size_t num_root_children = std::size_t{1} << root_bits;
  result.root_children.resize(num_root_children);
  if (n_series == 0) {
    return result;
  }

  WallTimer total_timer;

  // Phase 1: symbolize all series and derive root keys.
  WallTimer phase_timer;
  AlignedVector<std::uint8_t> words(n_series * l);
  std::vector<std::uint32_t> keys(n_series);
  ParallelFor(pool, n_series,
              [&](std::size_t begin, std::size_t end, std::size_t) {
                auto scratch = scheme.NewScratch();
                std::vector<float> values(l);
                for (std::size_t i = begin; i < end; ++i) {
                  std::uint8_t* word = words.data() + i * l;
                  scheme.Symbolize(data.row(i), word, scratch.get(),
                                   values.data());
                  std::uint32_t key = 0;
                  for (std::size_t dim = 0; dim < root_bits; ++dim) {
                    key = (key << 1) | (word[dim] >> (bits - 1));
                  }
                  keys[i] = key;
                }
              });
  result.stats.symbolize_seconds = phase_timer.Seconds();

  // Phase 2: partition ids by root key (histogram, offsets, scatter).
  phase_timer.Reset();
  std::vector<std::size_t> counts(num_root_children, 0);
  {
    std::vector<std::vector<std::size_t>> local_counts(
        pool->size(), std::vector<std::size_t>(num_root_children, 0));
    ParallelFor(pool, n_series,
                [&](std::size_t begin, std::size_t end, std::size_t worker) {
                  auto& local = local_counts[worker];
                  for (std::size_t i = begin; i < end; ++i) {
                    ++local[keys[i]];
                  }
                });
    for (const auto& local : local_counts) {
      for (std::size_t key = 0; key < num_root_children; ++key) {
        counts[key] += local[key];
      }
    }
  }
  std::vector<std::size_t> offsets(num_root_children + 1, 0);
  for (std::size_t key = 0; key < num_root_children; ++key) {
    offsets[key + 1] = offsets[key] + counts[key];
  }
  std::vector<std::uint32_t> ids(n_series);
  {
    std::vector<std::atomic<std::size_t>> cursors(num_root_children);
    for (auto& c : cursors) {
      c.store(0, std::memory_order_relaxed);
    }
    ParallelFor(pool, n_series,
                [&](std::size_t begin, std::size_t end, std::size_t) {
                  for (std::size_t i = begin; i < end; ++i) {
                    const std::uint32_t key = keys[i];
                    const std::size_t pos =
                        offsets[key] + cursors[key].fetch_add(
                                           1, std::memory_order_relaxed);
                    ids[pos] = static_cast<std::uint32_t>(i);
                  }
                });
  }
  result.stats.partition_seconds = phase_timer.Seconds();

  // Phase 3: build non-empty subtrees in parallel.
  phase_timer.Reset();
  std::vector<std::uint32_t> nonempty;
  for (std::size_t key = 0; key < num_root_children; ++key) {
    if (counts[key] == 0) {
      continue;
    }
    auto node = std::make_unique<Node>(l);
    for (std::size_t dim = 0; dim < root_bits; ++dim) {
      node->cards[dim] = 1;
      node->prefixes[dim] = (key >> (root_bits - 1 - dim)) & 1u;
    }
    result.root_children[key] = std::move(node);
    nonempty.push_back(static_cast<std::uint32_t>(key));
  }
  BuildContext ctx{&data,      &scheme, &config, words.data(),
                   ids.data(), l,       bits};
  DynamicParallelFor(
      pool, nonempty.size(), 1,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t b = begin; b < end; ++b) {
          const std::uint32_t key = nonempty[b];
          BuildNode(ctx, result.root_children[key].get(), offsets[key],
                    offsets[key + 1]);
        }
      });
  result.stats.tree_seconds = phase_timer.Seconds();

  result.subtrees.reserve(nonempty.size());
  for (const std::uint32_t key : nonempty) {
    result.subtrees.emplace_back(key, result.root_children[key].get());
  }
  result.stats.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace index
}  // namespace sofa
