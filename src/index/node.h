// Tree nodes of the MESSI-style index (paper Section IV-B).
//
// Every node carries a variable-cardinality summary: per dimension, the top
// `cards[dim]` bits of the symbol shared by all series beneath it
// (cardinality 0 = unconstrained). Root children constrain the first bit of
// each dimension; a split increases one dimension's cardinality by one bit.
// Leaves store the series ids plus their full-cardinality words in a dense
// row-major block scanned by the SIMD LBD kernel.

#ifndef SOFA_INDEX_NODE_H_
#define SOFA_INDEX_NODE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/aligned.h"

namespace sofa {
namespace index {

/// Marker for "node has not been split".
inline constexpr std::uint16_t kNoSplit = 0xffff;

/// One tree node; a leaf until Split() turns it into an inner node.
struct Node {
  explicit Node(std::size_t word_length)
      : prefixes(word_length, 0), cards(word_length, 0) {}

  /// Per-dimension symbol prefix values (only the low cards[d] bits used).
  std::vector<std::uint8_t> prefixes;

  /// Per-dimension cardinality in bits (0 … scheme bits).
  std::vector<std::uint8_t> cards;

  /// Children (inner nodes only); left = next bit 0, right = next bit 1.
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  /// Dimension whose cardinality the split increased; kNoSplit for leaves.
  std::uint16_t split_dim = kNoSplit;

  /// Leaf payload: ids into the indexed dataset...
  AlignedVector<std::uint32_t> series_ids;

  /// ... and their words, row-major [series][word_length].
  AlignedVector<std::uint8_t> words;

  bool is_leaf() const { return left == nullptr; }

  /// Number of series stored in this leaf.
  std::size_t leaf_size() const { return series_ids.size(); }
};

/// Aggregated structural statistics (Fig. 8).
struct TreeStats {
  std::size_t num_subtrees = 0;   // non-empty root children
  std::size_t num_leaves = 0;
  std::size_t num_inner = 0;
  std::size_t total_series = 0;
  std::size_t max_depth = 0;      // leaf depth below the root child
  double avg_depth = 0.0;         // mean leaf depth
  double avg_leaf_size = 0.0;     // mean series per leaf
};

/// Accumulates stats of the subtree rooted at `node` (depth 0 = `node`).
void AccumulateStats(const Node& node, std::size_t depth, TreeStats* stats,
                     std::size_t* depth_sum);

}  // namespace index
}  // namespace sofa

#endif  // SOFA_INDEX_NODE_H_
