// Parallel bulk construction of the tree index (internal to TreeIndex).
//
// Pipeline (adapted from MESSI's buffer-based construction to a bulk build
// with the same resulting structure):
//   1. symbolize every series in parallel (one scratch per worker),
//      computing its word and its root key (first bit of each dimension);
//   2. partition series ids by root key (parallel histogram + scatter);
//   3. build each non-empty subtree independently on the thread pool,
//      recursively splitting leaves over capacity by increasing one
//      dimension's cardinality (split policy: best-balance or round-robin).

#ifndef SOFA_INDEX_INDEX_BUILDER_H_
#define SOFA_INDEX_INDEX_BUILDER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "index/tree_index.h"
#include "quant/summary_scheme.h"

namespace sofa {

class ThreadPool;

namespace index {

/// Result of BuildTree.
struct BuildResult {
  std::vector<std::unique_ptr<Node>> root_children;
  std::vector<std::pair<std::uint32_t, Node*>> subtrees;
  BuildStats stats;
};

/// Builds the full tree; `root_bits` = min(word_length, 16).
BuildResult BuildTree(const Dataset& data,
                      const quant::SummaryScheme& scheme,
                      const IndexConfig& config, std::size_t root_bits,
                      ThreadPool* pool);

}  // namespace index
}  // namespace sofa

#endif  // SOFA_INDEX_INDEX_BUILDER_H_
