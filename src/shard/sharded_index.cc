#include "shard/sharded_index.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "service/executor.h"
#include "util/check.h"

namespace sofa {
namespace shard {
namespace {

// splitmix64 finalizer: a full-avalanche mix so consecutive ids spread
// uniformly (plain `id % N` would stripe, defeating the point of a hash
// assignment under sequential inserts).
std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::size_t ShardedIndex::AssignShard(ShardAssignment assignment,
                                      std::uint32_t id, std::size_t total,
                                      std::size_t num_shards) {
  SOFA_DCHECK(num_shards > 0);
  if (assignment == ShardAssignment::kHash) {
    return static_cast<std::size_t>(Mix64(id) % num_shards);
  }
  // Contiguous: the first (total % num_shards) shards hold one extra row,
  // so shard sizes differ by at most one. Ids beyond the build-time total
  // (the ingest path's inserts) extend the last shard's range — without
  // this the arithmetic below would yield a shard index >= num_shards.
  if (id >= total) {
    return num_shards - 1;
  }
  const std::size_t base = total / num_shards;
  const std::size_t extra = total % num_shards;
  const std::size_t boundary = extra * (base + 1);
  if (id < boundary) {
    return id / (base + 1);
  }
  return base == 0 ? num_shards - 1 : extra + (id - boundary) / base;
}

ShardPartition ShardedIndex::Partition(const Dataset& data,
                                       std::size_t num_shards,
                                       ShardAssignment assignment) {
  SOFA_CHECK(num_shards > 0);
  std::vector<std::shared_ptr<Dataset>> slices;
  std::vector<std::shared_ptr<std::vector<std::uint32_t>>> ids;
  slices.reserve(num_shards);
  ids.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    slices.push_back(std::make_shared<Dataset>(data.length()));
    ids.push_back(std::make_shared<std::vector<std::uint32_t>>());
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint32_t id = static_cast<std::uint32_t>(i);
    const std::size_t s = AssignShard(assignment, id, data.size(), num_shards);
    slices[s]->Append(data.row(i));
    ids[s]->push_back(id);
  }
  ShardPartition partition;
  partition.data.assign(slices.begin(), slices.end());
  partition.global_ids.assign(ids.begin(), ids.end());
  return partition;
}

ShardedIndex::ShardedIndex(std::vector<Shard> shards,
                           const ShardingConfig& config, std::size_t length,
                           ThreadPool* pool)
    : shards_(std::move(shards)), config_(config), length_(length),
      pool_(pool) {
  SOFA_CHECK(pool_ != nullptr);
  SOFA_CHECK(!shards_.empty());
  for (const Shard& shard : shards_) {
    SOFA_CHECK(shard.data != nullptr && shard.tree != nullptr &&
               shard.global_ids != nullptr);
    SOFA_CHECK(shard.data->length() == length_);
    SOFA_CHECK(shard.global_ids->size() == shard.data->size());
    total_size_ += shard.data->size();
  }
}

std::shared_ptr<const ShardedIndex> ShardedIndex::Build(
    const Dataset& data, const ShardingConfig& config,
    std::shared_ptr<const quant::SummaryScheme> scheme, ThreadPool* pool) {
  SOFA_CHECK(scheme != nullptr);
  ShardPartition partition =
      Partition(data, config.num_shards, config.assignment);
  std::vector<Shard> shards(config.num_shards);
  for (std::size_t s = 0; s < config.num_shards; ++s) {
    shards[s].data = partition.data[s];
    shards[s].scheme = scheme;
    shards[s].global_ids = partition.global_ids[s];
    auto tree = std::make_shared<index::TreeIndex>(
        shards[s].data.get(), scheme.get(), config.index, pool);
    if (config.enable_rowq) {
      tree->AttachRowQuant(quant::RowQuant::Build(*shards[s].data));
    }
    shards[s].tree = std::move(tree);
  }
  return std::shared_ptr<const ShardedIndex>(
      new ShardedIndex(std::move(shards), config, data.length(), pool));
}

std::shared_ptr<const ShardedIndex> ShardedIndex::FromShards(
    std::vector<Shard> shards, const ShardingConfig& config,
    std::size_t length, ThreadPool* pool) {
  return std::shared_ptr<const ShardedIndex>(
      new ShardedIndex(std::move(shards), config, length, pool));
}

std::shared_ptr<const ShardedIndex> ShardedIndex::WithShardRebuilt(
    std::size_t shard_id) const {
  SOFA_CHECK(shard_id < shards_.size());
  Shard rebuilt = shards_[shard_id];
  auto tree = std::make_shared<index::TreeIndex>(
      rebuilt.data.get(), rebuilt.scheme.get(), config_.index, pool_);
  if (config_.enable_rowq) {
    tree->AttachRowQuant(quant::RowQuant::Build(*rebuilt.data));
  }
  rebuilt.tree = std::move(tree);
  return WithShardReplaced(shard_id, std::move(rebuilt));
}

std::shared_ptr<const ShardedIndex> ShardedIndex::WithShardReplaced(
    std::size_t shard_id, Shard shard) const {
  SOFA_CHECK(shard_id < shards_.size());
  SOFA_CHECK(shard.data != nullptr && shard.data->length() == length_);
  shard.generation = shards_[shard_id].generation + 1;
  std::vector<Shard> shards = shards_;  // aliases: every handle is shared
  shards[shard_id] = std::move(shard);
  return std::shared_ptr<const ShardedIndex>(
      new ShardedIndex(std::move(shards), config_, length_, pool_));
}

std::vector<Neighbor> ShardedIndex::SearchKnn(const float* query,
                                              std::size_t k, double epsilon,
                                              index::QueryProfile* profile,
                                              std::size_t num_workers,
                                              ThreadPool* pool) const {
  if (total_size_ == 0 || k == 0) {
    return {};
  }
  std::vector<std::vector<Neighbor>> per_shard;
  std::vector<index::QueryProfile> profiles;
  ScatterKnn(query, k, epsilon, &per_shard,
             profile != nullptr ? &profiles : nullptr, num_workers, pool);
  if (profile != nullptr) {
    for (const index::QueryProfile& shard_profile : profiles) {
      profile->Merge(shard_profile);
    }
  }
  return MergeTopK(per_shard, k);
}

void ShardedIndex::ScatterKnn(const float* query, std::size_t k,
                              double epsilon,
                              std::vector<std::vector<Neighbor>>* per_shard,
                              std::vector<index::QueryProfile>* profiles,
                              std::size_t num_workers, ThreadPool* pool,
                              const std::vector<std::size_t>* k_extra) const {
  SOFA_CHECK(per_shard != nullptr);
  SOFA_CHECK(k_extra == nullptr || k_extra->size() == shards_.size());
  if (pool == nullptr) {
    pool = pool_;
  }
  per_shard->assign(shards_.size(), {});
  if (profiles != nullptr) {
    profiles->assign(shards_.size(), index::QueryProfile{});
  }
  if (k == 0) {
    return;
  }
  std::vector<service::QueryTask> tasks(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    tasks[s].index = shards_[s].tree.get();
    tasks[s].query = query;
    tasks[s].k = k + (k_extra != nullptr ? (*k_extra)[s] : 0);
    tasks[s].epsilon = epsilon;
    tasks[s].result = &(*per_shard)[s];
    tasks[s].profile = profiles != nullptr ? &(*profiles)[s] : nullptr;
  }
  service::RunTaskBatch(&tasks, pool, num_workers);
}

std::vector<Neighbor> MergeNeighborLists(
    std::vector<std::vector<Neighbor>> lists, std::size_t k,
    const std::unordered_set<std::uint32_t>* exclude,
    std::uint64_t* filtered) {
  // Tombstone filter first: a deleted row may still sit inside a tree
  // until its shard compacts; dropping it here (the caller searched each
  // source k + |exclude| deep) keeps the surviving per-source lists
  // ascending and complete for the merge below.
  if (exclude != nullptr && !exclude->empty()) {
    for (std::vector<Neighbor>& list : lists) {
      const auto is_deleted = [exclude](const Neighbor& nb) {
        return exclude->count(nb.id) != 0;
      };
      const auto end = std::remove_if(list.begin(), list.end(), is_deleted);
      if (filtered != nullptr) {
        *filtered += static_cast<std::uint64_t>(list.end() - end);
      }
      list.erase(end, list.end());
    }
  }
  // Per-source engines report ties in scan order; normalize each run of
  // equal distances to ascending id so the cursor merge below emits the
  // one total order (distance, id) — and a k boundary inside a tie run
  // keeps the lowest global ids, deterministically.
  std::size_t available = 0;
  for (std::vector<Neighbor>& list : lists) {
    available += list.size();
    auto run = list.begin();
    while (run != list.end()) {
      auto end = run + 1;
      while (end != list.end() && end->distance == run->distance) {
        ++end;
      }
      if (end - run > 1) {
        std::sort(run, end, [](const Neighbor& a, const Neighbor& b) {
          return a.id < b.id;
        });
      }
      run = end;
    }
  }
  // Tournament merge: every list is ascending by (distance, id), so a
  // min-heap of one cursor per list yields the global answer in order.
  struct Cursor {
    float distance;
    std::uint32_t id;
    std::uint32_t list;
    std::uint32_t pos;
    bool operator>(const Cursor& other) const {
      if (distance != other.distance) {
        return distance > other.distance;
      }
      return id > other.id;
    }
  };
  std::priority_queue<Cursor, std::vector<Cursor>, std::greater<Cursor>> heap;
  for (std::uint32_t s = 0; s < lists.size(); ++s) {
    if (!lists[s].empty()) {
      heap.push(Cursor{lists[s][0].distance, lists[s][0].id, s, 0});
    }
  }
  std::vector<Neighbor> merged;
  merged.reserve(std::min(k, available));
  while (merged.size() < k && !heap.empty()) {
    const Cursor top = heap.top();
    heap.pop();
    merged.push_back(Neighbor{top.id, top.distance});
    const std::uint32_t next = top.pos + 1;
    if (next < lists[top.list].size()) {
      heap.push(Cursor{lists[top.list][next].distance,
                       lists[top.list][next].id, top.list, next});
    }
  }
  return merged;
}

std::vector<Neighbor> ShardedIndex::MergeTopK(
    const std::vector<std::vector<Neighbor>>& per_shard, std::size_t k,
    std::vector<std::vector<Neighbor>> extras,
    const std::unordered_set<std::uint32_t>* exclude,
    std::uint64_t* filtered) const {
  SOFA_CHECK(per_shard.size() == shards_.size());
  std::vector<std::vector<Neighbor>> lists;
  lists.reserve(per_shard.size() + extras.size());
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    std::vector<Neighbor> mapped(per_shard[s].size());
    const std::vector<std::uint32_t>& global_ids = *shards_[s].global_ids;
    for (std::size_t i = 0; i < per_shard[s].size(); ++i) {
      mapped[i] =
          Neighbor{global_ids[per_shard[s][i].id], per_shard[s][i].distance};
    }
    lists.push_back(std::move(mapped));
  }
  for (std::vector<Neighbor>& extra : extras) {
    lists.push_back(std::move(extra));
  }
  return MergeNeighborLists(std::move(lists), k, exclude, filtered);
}

}  // namespace shard
}  // namespace sofa
