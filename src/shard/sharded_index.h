// Scatter-gather sharding over the exact tree index (ROADMAP: "shard one
// logical service across multiple indexes").
//
// A ShardedIndex partitions one logical collection across N TreeIndex
// shards, assigned at build time either by contiguous range or by a hash
// of the global series id. A query scatters through the service executor
// — one single-threaded task per shard — and the per-shard top-k heaps
// are gathered by a tournament (k-way) merge into the exact global top-k,
// FAISS-style (Johnson et al., billion-scale similarity search). The
// merge remaps shard-local ids to global ids and merges the per-shard
// QueryProfile pruning counters, so exactness accounting over the whole
// collection still holds: on tie-free collections every reported
// neighbor is bit-identical (same id, same float distance) to what the
// single-index engine reports for the same query. When distinct series
// tie at exactly equal distance across the k boundary (duplicate rows),
// the reported distances are still exact; the merge then picks ids
// deterministically (lowest global id first — both across source lists
// and within one list, whose tie runs are normalized before merging)
// whereas the single-index heap keeps whichever tied candidate its scan
// reached first.
//
// A ShardedIndex is immutable (it is published behind the same
// shared_ptr snapshot that SearchService hot-swaps); "updating" one
// shard means deriving a new generation that shares the N-1 untouched
// shards and replaces one — WithShardRebuilt / WithShardReplaced — and
// publishing the derived index. That per-shard republish is the first
// step toward index updates between generations.

#ifndef SOFA_SHARD_SHARDED_INDEX_H_
#define SOFA_SHARD_SHARDED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/dataset.h"
#include "core/neighbor.h"
#include "index/tree_index.h"
#include "quant/summary_scheme.h"
#include "util/thread_pool.h"

namespace sofa {
namespace shard {

/// How global series ids map to shards (fixed at build time; queries do
/// not depend on it, only the partition does).
enum class ShardAssignment {
  kContiguous,  // shard s holds one contiguous global-id range (default)
  kHash,        // shard = mix64(global id) % N — spreads hot inserts
};

/// Sharded-build parameters. `index` configures every per-shard tree.
struct ShardingConfig {
  std::size_t num_shards = 2;
  ShardAssignment assignment = ShardAssignment::kContiguous;
  index::IndexConfig index;

  /// Compressed pruning tier: when set, every built or rebuilt shard
  /// tree carries a quant::RowQuant sidecar (scalar-quantized row
  /// copies whose SIMD lower bounds prune ahead of the exact kernel),
  /// and the ingest path quantizes buffered rows too. Answers are
  /// bit-identical either way; only the work counters differ.
  bool enable_rowq = false;
};

/// One shard: its slice of the collection, the tree over that slice, and
/// the mapping from shard-local row ids back to global collection ids.
/// All handles are shared so a derived generation (one shard replaced)
/// aliases the untouched shards instead of copying them.
struct Shard {
  std::shared_ptr<const Dataset> data;
  std::shared_ptr<const quant::SummaryScheme> scheme;
  std::shared_ptr<const index::TreeIndex> tree;
  std::shared_ptr<const std::vector<std::uint32_t>> global_ids;
  std::uint64_t generation = 1;  // bumped by WithShardRebuilt/Replaced
};

/// The row slices and id mappings of one deterministic partition —
/// exposed so index persistence can re-create the identical split when
/// reloading per-shard index files against the full collection.
struct ShardPartition {
  std::vector<std::shared_ptr<const Dataset>> data;
  std::vector<std::shared_ptr<const std::vector<std::uint32_t>>> global_ids;
};

/// Merges per-source exact top-k lists — each ascending by distance and
/// carrying *global* ids — into the global top-k, ascending by
/// (distance, id). Ties at equal distance resolve to the lowest global id
/// deterministically, across lists and within one list (per-source
/// engines emit tie runs in scan order, so each run is id-normalized
/// before the tournament merge). The guarantee is over the candidates the
/// source lists surfaced: a source engine that truncated a tie run at its
/// own internal k boundary already chose which tied ids to keep (the tree
/// engine keeps scan order there — see the class comment above; the
/// insert buffer keeps lowest ids). This is the one gather everything
/// funnels through: shard scatter (via ShardedIndex::MergeTopK) and the
/// tree-∪-insert-buffer merge of the ingest path.
///
/// `exclude`, when given, drops every candidate whose global id is in the
/// set before the merge — the ingest path's tombstone filter for deleted
/// rows still physically present in a tree. The caller must have widened
/// the per-source k by |exclude| (a deleted row can displace at most one
/// live candidate per source list), so the surviving candidates still
/// contain each source's true top-k; `filtered`, when non-null, is
/// incremented by the number of candidates dropped (QueryProfile
/// accounting).
std::vector<Neighbor> MergeNeighborLists(
    std::vector<std::vector<Neighbor>> lists, std::size_t k,
    const std::unordered_set<std::uint32_t>* exclude = nullptr,
    std::uint64_t* filtered = nullptr);

class ShardedIndex {
 public:
  /// Shard of global id `id` under `assignment` (deterministic; the
  /// contract Partition() and any loader must agree on). Ids at or beyond
  /// `total` — inserted after the build-time partition — map to the last
  /// shard under kContiguous (which owns the open-ended tail range) and
  /// hash normally under kHash.
  static std::size_t AssignShard(ShardAssignment assignment, std::uint32_t id,
                                 std::size_t total, std::size_t num_shards);

  /// Splits `data` into per-shard datasets + id maps. Every shard of a
  /// contiguous split is non-empty when num_shards <= data.size(); a hash
  /// split may leave tiny collections with empty shards (still valid).
  static ShardPartition Partition(const Dataset& data, std::size_t num_shards,
                                  ShardAssignment assignment);

  /// Partitions `data` and builds one tree per shard, all with the same
  /// summarization scheme (trained once over the full collection) and the
  /// same per-shard index config. `pool` is used for the builds and for
  /// query scatter; it must outlive the index.
  static std::shared_ptr<const ShardedIndex> Build(
      const Dataset& data, const ShardingConfig& config,
      std::shared_ptr<const quant::SummaryScheme> scheme, ThreadPool* pool);

  /// Assembles an index from already-built shards (the persistence path:
  /// Partition() the collection, LoadIndex each shard file, wrap here).
  /// All shards must share the series length.
  static std::shared_ptr<const ShardedIndex> FromShards(
      std::vector<Shard> shards, const ShardingConfig& config,
      std::size_t length, ThreadPool* pool);

  /// Exact global k-NN: scatters one single-threaded task per shard
  /// through the service executor on `num_workers` workers (0 = pool
  /// size) of `pool` (null = the pool the index was built with), then
  /// tournament-merges the per-shard answers. `profile`, if given,
  /// receives the work counters merged across all shards. Must be called
  /// from a thread that is not a worker of the chosen pool (it blocks).
  ///
  /// With epsilon > 0 the per-rank (1+ε) bound survives the merge: the
  /// global exact top-i splits as counts c_s per shard, shard s's local
  /// rank-c_s exact distance is ≤ the global rank-i distance, and each
  /// shard answers within (1+ε) of its local exact ranks — so the merged
  /// rank-i answer is within (1+ε) of the global rank-i distance.
  std::vector<Neighbor> SearchKnn(const float* query, std::size_t k,
                                  double epsilon = 0.0,
                                  index::QueryProfile* profile = nullptr,
                                  std::size_t num_workers = 0,
                                  ThreadPool* pool = nullptr) const;

  /// The scatter half of SearchKnn without the gather: fills
  /// `per_shard[s]` with shard s's exact top-k (shard-local ids) and, when
  /// `profiles` is non-null, `(*profiles)[s]` with shard s's work counters
  /// (each counter lands in exactly one entry — callers merge once).
  /// `k_extra`, when given (size num_shards), deepens shard s's search to
  /// k + (*k_extra)[s] — the ingest path's per-shard tombstone widening,
  /// so the true live top-k survives the merge filter without every
  /// shard over-fetching by the global tombstone count. Exposed so the
  /// serving layer can gather tree answers together with insert-buffer
  /// answers in a single MergeTopK. Same threading contract as
  /// SearchKnn.
  void ScatterKnn(const float* query, std::size_t k, double epsilon,
                  std::vector<std::vector<Neighbor>>* per_shard,
                  std::vector<index::QueryProfile>* profiles,
                  std::size_t num_workers = 0, ThreadPool* pool = nullptr,
                  const std::vector<std::size_t>* k_extra = nullptr) const;

  /// Gathers per-shard answers (ascending, shard-local ids; indexed by
  /// shard) into the exact global top-k with global ids via
  /// MergeNeighborLists (ties: lowest global id first). `extras` are
  /// additional already-global ascending lists merged alongside — the
  /// ingest path's per-shard insert-buffer answers. `exclude`/`filtered`
  /// are the tombstone filter and its profile counter, applied after the
  /// shard-local → global id remap (see MergeNeighborLists for the
  /// contract). Exposed for the service's batched scatter, which runs the
  /// shard tasks itself.
  std::vector<Neighbor> MergeTopK(
      const std::vector<std::vector<Neighbor>>& per_shard, std::size_t k,
      std::vector<std::vector<Neighbor>> extras = {},
      const std::unordered_set<std::uint32_t>* exclude = nullptr,
      std::uint64_t* filtered = nullptr) const;

  /// A new generation with shard `shard_id`'s tree rebuilt from its own
  /// rows (same scheme and config); the other shards are shared, not
  /// copied. The rebuild is deterministic, so answers are bit-identical.
  std::shared_ptr<const ShardedIndex> WithShardRebuilt(
      std::size_t shard_id) const;

  /// A new generation with shard `shard_id` replaced wholesale (e.g.
  /// reloaded from disk); the replacement's generation counter is bumped
  /// past the current one. Series length must match.
  std::shared_ptr<const ShardedIndex> WithShardReplaced(std::size_t shard_id,
                                                        Shard shard) const;

  std::size_t num_shards() const { return shards_.size(); }
  const Shard& shard(std::size_t s) const { return shards_[s]; }
  std::size_t size() const { return total_size_; }    // total series
  std::size_t length() const { return length_; }      // series length
  ThreadPool* pool() const { return pool_; }
  const ShardingConfig& config() const { return config_; }

 private:
  ShardedIndex(std::vector<Shard> shards, const ShardingConfig& config,
               std::size_t length, ThreadPool* pool);

  std::vector<Shard> shards_;
  ShardingConfig config_;
  std::size_t length_;
  std::size_t total_size_ = 0;
  ThreadPool* pool_;
};

}  // namespace shard
}  // namespace sofa

#endif  // SOFA_SHARD_SHARDED_INDEX_H_
