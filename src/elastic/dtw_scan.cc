#include "elastic/dtw_scan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "elastic/dtw.h"
#include "elastic/envelope.h"
#include "elastic/lower_bounds.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace sofa {
namespace elastic {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct HeapEntry {
  double dist_sq;
  std::uint32_t id;
  bool operator<(const HeapEntry& other) const {  // max-heap on distance
    return dist_sq < other.dist_sq;
  }
};

using LocalHeap = std::priority_queue<HeapEntry>;

}  // namespace

void DtwScanProfile::MergeFrom(const DtwScanProfile& other) {
  candidates += other.candidates;
  pruned_kim += other.pruned_kim;
  pruned_keogh_qc += other.pruned_keogh_qc;
  pruned_keogh_cq += other.pruned_keogh_cq;
  dtw_abandoned += other.dtw_abandoned;
  dtw_full += other.dtw_full;
}

DtwScan::DtwScan(const Dataset* data, ThreadPool* pool,
                 const Options& options)
    : data_(data), pool_(pool), options_(options) {
  SOFA_CHECK(data_ != nullptr);
  SOFA_CHECK(pool_ != nullptr);
  if (options_.use_reverse_keogh && !data_->empty()) {
    const std::size_t n = data_->length();
    candidate_lower_.resize(data_->size() * n);
    candidate_upper_.resize(data_->size() * n);
    ParallelFor(pool_, data_->size(),
                [&](std::size_t begin, std::size_t end, std::size_t) {
                  for (std::size_t i = begin; i < end; ++i) {
                    ComputeEnvelope(data_->row(i), n, options_.band,
                                    candidate_lower_.data() + i * n,
                                    candidate_upper_.data() + i * n);
                  }
                });
  }
}

Neighbor DtwScan::Search1Nn(const float* query,
                            DtwScanProfile* profile) const {
  const std::vector<Neighbor> result = SearchKnn(query, 1, profile);
  SOFA_CHECK(!result.empty()) << "1-NN query on an empty collection";
  return result[0];
}

std::vector<Neighbor> DtwScan::SearchKnn(const float* query, std::size_t k,
                                         DtwScanProfile* profile) const {
  if (data_->empty() || k == 0) {
    return {};
  }
  k = std::min(k, data_->size());
  const std::size_t n = data_->length();
  const Envelope query_envelope = ComputeEnvelope(query, n, options_.band);

  std::vector<LocalHeap> heaps(pool_->size());
  std::vector<DtwScanProfile> profiles(pool_->size());
  ParallelFor(pool_, data_->size(), [&](std::size_t begin, std::size_t end,
                                        std::size_t worker) {
    LocalHeap& heap = heaps[worker];
    DtwScanProfile& local = profiles[worker];
    DtwScratch scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const float* candidate = data_->row(i);
      const double bound = heap.size() == k ? heap.top().dist_sq : kInf;
      ++local.candidates;
      if (heap.size() == k) {  // bounds only prune once the heap is warm
        if (LbKim(query, candidate, n) > bound) {
          ++local.pruned_kim;
          continue;
        }
        if (LbKeogh(candidate, query_envelope.lower.data(),
                    query_envelope.upper.data(), n, bound) > bound) {
          ++local.pruned_keogh_qc;
          continue;
        }
        if (options_.use_reverse_keogh &&
            LbKeogh(query, candidate_lower_.data() + i * n,
                    candidate_upper_.data() + i * n, n, bound) > bound) {
          ++local.pruned_keogh_cq;
          continue;
        }
      }
      const double d =
          DtwEarlyAbandon(query, candidate, n, options_.band, bound,
                          &scratch);
      if (d > bound) {
        ++local.dtw_abandoned;
        continue;
      }
      ++local.dtw_full;
      if (heap.size() < k) {
        heap.push(HeapEntry{d, static_cast<std::uint32_t>(i)});
      } else if (d < heap.top().dist_sq) {
        heap.pop();
        heap.push(HeapEntry{d, static_cast<std::uint32_t>(i)});
      }
    }
  });

  if (profile != nullptr) {
    *profile = DtwScanProfile();
    for (const auto& local : profiles) {
      profile->MergeFrom(local);
    }
  }

  LocalHeap merged;
  for (auto& heap : heaps) {
    while (!heap.empty()) {
      if (merged.size() < k) {
        merged.push(heap.top());
      } else if (heap.top().dist_sq < merged.top().dist_sq) {
        merged.pop();
        merged.push(heap.top());
      }
      heap.pop();
    }
  }
  std::vector<Neighbor> result;
  result.reserve(merged.size());
  while (!merged.empty()) {
    result.push_back(Neighbor{
        merged.top().id,
        static_cast<float>(std::sqrt(merged.top().dist_sq))});
    merged.pop();
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace elastic
}  // namespace sofa
