// Lower bounds to banded DTW — the UCR-suite pruning cascade.
//
// Both bounds are against the *squared* DTW of elastic/dtw.h and respect
// the band radius the envelope was built with:
//
//   LB_Kim  ≤ LB-free constant-time endpoint bound,
//   LB_Keogh(Q, C) = Σ_j max(c_j − U_j, L_j − c_j, 0)²  with Q's envelope.
//
// LB_Kim exploits that any warping path must align the first points and
// the last points of both series, so those two squared costs always
// contribute. LB_Keogh is the classic envelope bound; swapping roles
// (candidate envelope against the query) gives a second, differently-tight
// bound, and the scan cascades Kim → Keogh(Q,C) → Keogh(C,Q) → DTW exactly
// like the UCR suite [17].

#ifndef SOFA_ELASTIC_LOWER_BOUNDS_H_
#define SOFA_ELASTIC_LOWER_BOUNDS_H_

#include <cstddef>
#include <limits>

namespace sofa {
namespace elastic {

/// Constant-time endpoint bound: (a_0 − b_0)² + (a_{n−1} − b_{n−1})².
double LbKim(const float* a, const float* b, std::size_t n);

namespace scalar {

/// Portable LB_Keogh; see the dispatching entry point below.
double LbKeogh(const float* c, const float* lower, const float* upper,
               std::size_t n, double bound);

}  // namespace scalar

#if defined(SOFA_HAVE_AVX2)
namespace avx2 {

/// 8-lane LB_Keogh with mask-free branching — the same trick as the
/// paper's Algorithm 3 for the SFA mindist: the three branches collapse
/// into d = max(c − U, L − c, 0) evaluated per lane, squared and
/// accumulated in double pairs; the early-abandon test runs per 8-point
/// chunk exactly like the paper's Figure 6.
double LbKeogh(const float* c, const float* lower, const float* upper,
               std::size_t n, double bound);

}  // namespace avx2
#endif  // SOFA_HAVE_AVX2

/// Envelope bound of the series `c` against the radius-r envelope
/// (lower/upper, n floats each) of another series. Early-abandons once the
/// partial sum exceeds `bound` (the returned prefix sum is itself a valid
/// lower bound). With bound = +inf the full sum is returned. Dispatches to
/// the best compiled-in kernel.
double LbKeogh(const float* c, const float* lower, const float* upper,
               std::size_t n,
               double bound = std::numeric_limits<double>::infinity());

}  // namespace elastic
}  // namespace sofa

#endif  // SOFA_ELASTIC_LOWER_BOUNDS_H_
