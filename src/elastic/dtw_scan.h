// Exact DTW 1-NN/k-NN scan with the UCR-suite pruning cascade [17].
//
// Whole-series matching under banded DTW, parallelized like scan/ucr_scan:
// each worker owns a contiguous slice of the collection and a thread-local
// best-so-far; the single synchronization point merges local heaps. Per
// candidate the cascade is
//
//   LB_Kim (O(1))  →  LB_Keogh(Q-env, C)  →  LB_Keogh(C-env, Q)
//                  →  early-abandoning banded DTW,
//
// every tier pruning against the current k-th best squared DTW. Candidate
// envelopes are precomputed at construction (the memory-for-time trade the
// UCR suite makes when the collection is fixed and queries stream in).
//
// This is the substrate for bench/relwork_ed_vs_dtw.cpp, which measures
// the Shieh & Keogh convergence claim the paper cites when justifying its
// ED-only focus (Section III).

#ifndef SOFA_ELASTIC_DTW_SCAN_H_
#define SOFA_ELASTIC_DTW_SCAN_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/neighbor.h"
#include "util/aligned.h"

namespace sofa {

class ThreadPool;

namespace elastic {

/// Per-query work counters (merged over workers).
struct DtwScanProfile {
  std::size_t candidates = 0;
  std::size_t pruned_kim = 0;        // discarded by LB_Kim
  std::size_t pruned_keogh_qc = 0;   // discarded by LB_Keogh(Q-env, C)
  std::size_t pruned_keogh_cq = 0;   // discarded by LB_Keogh(C-env, Q)
  std::size_t dtw_abandoned = 0;     // DTW recurrence aborted early
  std::size_t dtw_full = 0;          // DTW computed to completion

  void MergeFrom(const DtwScanProfile& other);
};

/// Parallel exact k-NN scan under banded DTW.
class DtwScan {
 public:
  struct Options {
    /// Sakoe-Chiba band radius in points. The classic default is 10% of
    /// the series length; callers set it explicitly.
    std::size_t band = 10;
    /// Enables the third cascade tier (candidate-envelope bound). Costs
    /// 2× the collection in precomputed envelope memory.
    bool use_reverse_keogh = true;
  };

  /// `data` must be z-normalized and outlive the scanner; candidate
  /// envelopes are built here (parallel on `pool`).
  DtwScan(const Dataset* data, ThreadPool* pool, const Options& options);

  /// Exact nearest neighbor under banded DTW. Neighbor::distance is
  /// √DTW², comparable to the Euclidean convention used elsewhere.
  Neighbor Search1Nn(const float* query,
                     DtwScanProfile* profile = nullptr) const;

  /// Exact k-NN, ascending by distance (k clamped to collection size).
  std::vector<Neighbor> SearchKnn(const float* query, std::size_t k,
                                  DtwScanProfile* profile = nullptr) const;

  const Dataset& data() const { return *data_; }
  std::size_t band() const { return options_.band; }

 private:
  const Dataset* data_;
  ThreadPool* pool_;
  Options options_;
  // Candidate envelopes, row-major like the dataset (empty when the
  // reverse-Keogh tier is disabled).
  AlignedVector<float> candidate_lower_;
  AlignedVector<float> candidate_upper_;
};

}  // namespace elastic
}  // namespace sofa

#endif  // SOFA_ELASTIC_DTW_SCAN_H_
