#include "elastic/envelope.h"

#include <deque>

#include "util/check.h"

namespace sofa {
namespace elastic {

void ComputeEnvelope(const float* series, std::size_t n, std::size_t radius,
                     float* lower, float* upper) {
  SOFA_CHECK(n > 0);
  // Sliding window [i−radius, i+radius]; deques hold candidate indices
  // with monotone values (front = current extremum).
  std::deque<std::size_t> max_deque;
  std::deque<std::size_t> min_deque;

  auto push = [&](std::size_t t) {
    while (!max_deque.empty() && series[max_deque.back()] <= series[t]) {
      max_deque.pop_back();
    }
    max_deque.push_back(t);
    while (!min_deque.empty() && series[min_deque.back()] >= series[t]) {
      min_deque.pop_back();
    }
    min_deque.push_back(t);
  };

  // Prime the window for i = 0: indices [0, radius].
  const std::size_t first_end = radius >= n - 1 ? n - 1 : radius;
  for (std::size_t t = 0; t <= first_end; ++t) {
    push(t);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) {
      // radius may be huge (e.g. kFullBand used as "no constraint"):
      // guard the index arithmetic against wraparound.
      const std::size_t enter =
          radius >= n - i ? n : i + radius;
      if (enter < n) {
        push(enter);
      }
      const std::size_t window_begin = i >= radius ? i - radius : 0;
      while (max_deque.front() < window_begin) {
        max_deque.pop_front();
      }
      while (min_deque.front() < window_begin) {
        min_deque.pop_front();
      }
    }
    upper[i] = series[max_deque.front()];
    lower[i] = series[min_deque.front()];
  }
}

Envelope ComputeEnvelope(const float* series, std::size_t n,
                         std::size_t radius) {
  Envelope envelope;
  envelope.lower.resize(n);
  envelope.upper.resize(n);
  ComputeEnvelope(series, n, radius, envelope.lower.data(),
                  envelope.upper.data());
  return envelope;
}

}  // namespace elastic
}  // namespace sofa
