#include "elastic/lower_bounds.h"

#if defined(SOFA_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace sofa {
namespace elastic {

double LbKim(const float* a, const float* b, std::size_t n) {
  const double first = static_cast<double>(a[0]) - b[0];
  const double last = static_cast<double>(a[n - 1]) - b[n - 1];
  return first * first + last * last;
}

namespace scalar {

double LbKeogh(const float* c, const float* lower, const float* upper,
               std::size_t n, double bound) {
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const float x = c[j];
    double diff = 0.0;
    if (x > upper[j]) {
      diff = static_cast<double>(x) - upper[j];
    } else if (x < lower[j]) {
      diff = static_cast<double>(lower[j]) - x;
    }
    sum += diff * diff;
    if (sum > bound) {
      return sum;
    }
  }
  return sum;
}

}  // namespace scalar

#if defined(SOFA_HAVE_AVX2)
namespace avx2 {

double LbKeogh(const float* c, const float* lower, const float* upper,
               std::size_t n, double bound) {
  // The three conditional branches of Eq. 2 / LB_Keogh collapse into
  //   d = max(c − U, L − c, 0)
  // because at most one of (c − U), (L − c) is positive. Squares are
  // accumulated in two double accumulators (low/high lanes) and the bound
  // is checked once per 8-point chunk (paper Figure 6's chunking).
  // Subtractions run in double lanes (floats are exact in double), so the
  // kernel never rounds a diff upward past the scalar value — the bound
  // stays a bound bit-for-bit, matching scalar::LbKeogh semantics.
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const __m256d zero = _mm256_setzero_pd();
  double sum = 0.0;
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 x = _mm256_loadu_ps(c + j);
    const __m256 u = _mm256_loadu_ps(upper + j);
    const __m256 l = _mm256_loadu_ps(lower + j);
    const __m256d x_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(x));
    const __m256d x_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1));
    const __m256d u_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(u));
    const __m256d u_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(u, 1));
    const __m256d l_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(l));
    const __m256d l_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(l, 1));
    const __m256d diff_lo = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(x_lo, u_lo), _mm256_sub_pd(l_lo, x_lo)),
        zero);
    const __m256d diff_hi = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(x_hi, u_hi), _mm256_sub_pd(l_hi, x_hi)),
        zero);
    acc_lo = _mm256_fmadd_pd(diff_lo, diff_lo, acc_lo);
    acc_hi = _mm256_fmadd_pd(diff_hi, diff_hi, acc_hi);

    const __m256d total = _mm256_add_pd(acc_lo, acc_hi);
    const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(total),
                                    _mm256_extractf128_pd(total, 1));
    sum = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
    if (sum > bound) {
      return sum;
    }
  }
  for (; j < n; ++j) {
    const float x = c[j];
    double diff = 0.0;
    if (x > upper[j]) {
      diff = static_cast<double>(x) - upper[j];
    } else if (x < lower[j]) {
      diff = static_cast<double>(lower[j]) - x;
    }
    sum += diff * diff;
    if (sum > bound) {
      return sum;
    }
  }
  return sum;
}

}  // namespace avx2
#endif  // SOFA_HAVE_AVX2

double LbKeogh(const float* c, const float* lower, const float* upper,
               std::size_t n, double bound) {
#if defined(SOFA_HAVE_AVX2)
  return avx2::LbKeogh(c, lower, upper, n, bound);
#else
  return scalar::LbKeogh(c, lower, upper, n, bound);
#endif
}

}  // namespace elastic
}  // namespace sofa
