// Warping envelopes for DTW lower bounds.
//
// The envelope of a series under band radius r is the running min/max over
// the window [i−r, i+r]:
//
//   U[i] = max(a[max(0,i−r)] … a[min(n−1,i+r)]),   L[i] = min(…).
//
// Any banded alignment of candidate point c[j] with |i − j| ≤ r matches a
// query point inside the window, so (c[j] − U[j])² / (L[j] − c[j])² below
// LB_Keogh never overshoots the true warped cost. Computed with Lemire's
// monotonic-deque streaming algorithm in O(n) regardless of r.

#ifndef SOFA_ELASTIC_ENVELOPE_H_
#define SOFA_ELASTIC_ENVELOPE_H_

#include <cstddef>
#include <vector>

namespace sofa {
namespace elastic {

/// Lower/upper warping envelope of one series.
struct Envelope {
  std::vector<float> lower;
  std::vector<float> upper;
};

/// Writes the radius-r envelope of `series` into lower/upper (each holding
/// n floats). O(n) via monotonic deques.
void ComputeEnvelope(const float* series, std::size_t n, std::size_t radius,
                     float* lower, float* upper);

/// Convenience overload returning a fresh Envelope.
Envelope ComputeEnvelope(const float* series, std::size_t n,
                         std::size_t radius);

}  // namespace elastic
}  // namespace sofa

#endif  // SOFA_ELASTIC_ENVELOPE_H_
