// Dynamic Time Warping on squared point costs.
//
// The paper restricts itself to Euclidean distance and cites Shieh & Keogh
// [46]: the 1-NN error of ED approaches that of DTW as collections grow,
// which is why large-scale indexing favors ED. This module provides the
// DTW side of that claim — constrained (Sakoe-Chiba band) and
// unconstrained DTW with the UCR-suite-style early-abandoning recurrence —
// so bench/relwork_ed_vs_dtw.cpp can measure the convergence and the
// elastic scan has an exact distance to cascade onto.
//
// Conventions: costs are squared point differences, so Dtw(a, b) with band
// radius 0 equals the squared Euclidean distance and √DTW is comparable to
// the Neighbor distances used elsewhere. A band radius r allows alignment
// |i − j| ≤ r (r ≥ |an − bn| is required for a path to exist).

#ifndef SOFA_ELASTIC_DTW_H_
#define SOFA_ELASTIC_DTW_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace sofa {
namespace elastic {

/// Band radius meaning "no constraint".
inline constexpr std::size_t kFullBand =
    std::numeric_limits<std::size_t>::max();

/// Reusable rolling rows for the DTW recurrence (one per worker thread).
struct DtwScratch {
  std::vector<double> previous;
  std::vector<double> current;
};

/// Squared DTW between `a` (length an) and `b` (length bn) under a
/// Sakoe-Chiba band of radius `band` (kFullBand = unconstrained). Aborts
/// if the band admits no path (band < |an − bn|).
double Dtw(const float* a, std::size_t an, const float* b, std::size_t bn,
           std::size_t band = kFullBand);

/// Early-abandoning squared DTW for equal-length series: rows whose
/// minimum already exceeds `bound` abort the recurrence and return that
/// row minimum (> bound, signalling "abandoned"). With bound = +inf the
/// result is exact. `scratch` may be nullptr (allocates internally).
double DtwEarlyAbandon(const float* a, const float* b, std::size_t n,
                       std::size_t band, double bound,
                       DtwScratch* scratch = nullptr);

}  // namespace elastic
}  // namespace sofa

#endif  // SOFA_ELASTIC_DTW_H_
