#include "elastic/dtw.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sofa {
namespace elastic {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double SquaredCost(float x, float y) {
  const double diff = static_cast<double>(x) - static_cast<double>(y);
  return diff * diff;
}

}  // namespace

double Dtw(const float* a, std::size_t an, const float* b, std::size_t bn,
           std::size_t band) {
  SOFA_CHECK(an > 0 && bn > 0);
  const std::size_t length_gap = an > bn ? an - bn : bn - an;
  SOFA_CHECK(band == kFullBand || band >= length_gap)
      << "band " << band << " admits no path for lengths " << an << "/"
      << bn;

  std::vector<double> previous(bn + 1, kInf);
  std::vector<double> current(bn + 1, kInf);
  previous[0] = 0.0;
  for (std::size_t i = 0; i < an; ++i) {
    std::size_t j_begin = 0;
    std::size_t j_end = bn;
    if (band != kFullBand) {
      j_begin = i > band ? i - band : 0;
      j_end = std::min(bn, i + band + 1);
    }
    current[0] = kInf;
    std::fill(current.begin() + 1, current.begin() + j_begin + 1, kInf);
    for (std::size_t j = j_begin; j < j_end; ++j) {
      const double best = std::min({previous[j], previous[j + 1],
                                    current[j]});
      current[j + 1] = SquaredCost(a[i], b[j]) + best;
    }
    std::fill(current.begin() + j_end + 1, current.end(), kInf);
    std::swap(previous, current);
  }
  return previous[bn];
}

double DtwEarlyAbandon(const float* a, const float* b, std::size_t n,
                       std::size_t band, double bound, DtwScratch* scratch) {
  SOFA_CHECK(n > 0);
  DtwScratch local;
  if (scratch == nullptr) {
    scratch = &local;
  }
  scratch->previous.assign(n + 1, kInf);
  scratch->current.assign(n + 1, kInf);
  scratch->previous[0] = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    std::size_t j_begin = 0;
    std::size_t j_end = n;
    if (band != kFullBand) {
      j_begin = i > band ? i - band : 0;
      j_end = std::min(n, i + band + 1);
    }
    double* current = scratch->current.data();
    const double* previous = scratch->previous.data();
    current[0] = kInf;
    std::fill(current + 1, current + j_begin + 1, kInf);
    double row_min = kInf;
    for (std::size_t j = j_begin; j < j_end; ++j) {
      const double best =
          std::min({previous[j], previous[j + 1], current[j]});
      const double value = SquaredCost(a[i], b[j]) + best;
      current[j + 1] = value;
      row_min = std::min(row_min, value);
    }
    std::fill(current + j_end + 1, current + n + 1, kInf);
    // Every path must pass through this row; if the cheapest cell already
    // exceeds the bound, the final distance will too.
    if (row_min > bound) {
      return row_min;
    }
    std::swap(scratch->previous, scratch->current);
  }
  return scratch->previous[n];
}

}  // namespace elastic
}  // namespace sofa
