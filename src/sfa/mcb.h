// MCB — Multiple Coefficient Binning (paper Algorithm 1).
//
// Learns an SFA summarization from a dataset: sample a fraction r of the
// series, DFT them, rank the real/imaginary coefficient values of the
// candidate pool by variance, keep the top l, and learn alphabet-many
// quantization bins per kept value from its sample distribution.

#ifndef SOFA_SFA_MCB_H_
#define SOFA_SFA_MCB_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/dataset.h"
#include "quant/binning.h"
#include "sfa/sfa_scheme.h"

namespace sofa {

class ThreadPool;

namespace sfa {

/// Training configuration; defaults mirror the paper's SOFA setup.
struct SfaConfig {
  /// Number of real/imaginary values kept (16 values = 8 complex
  /// coefficients).
  std::size_t word_length = 16;

  /// Alphabet size (power of two ≤ 256).
  std::size_t alphabet = 256;

  /// Candidate pool: the first `candidate_coefficients` non-DC complex
  /// coefficients (the paper selects from the first 16). Clamped to the
  /// spectrum length.
  std::size_t candidate_coefficients = 16;

  /// Bin-learning rule; the paper's ablation favours equi-width.
  quant::BinningMethod binning = quant::BinningMethod::kEquiWidth;

  /// Variance-based value selection (SOFA) vs. low-pass first-l values
  /// (classic SFA) — the "+VAR" ablation axis.
  bool variance_selection = true;

  /// Fraction of the dataset sampled for learning (Algorithm 1, default 1%).
  double sampling_ratio = 0.01;

  /// Lower bound on the sample size (small datasets use everything).
  std::size_t min_sample = 256;

  /// Include the DC coefficient's real part in the candidate pool. Off by
  /// default: series are z-normalized, so DC is identically 0.
  bool include_dc = false;

  /// Sampling seed (reproducibility).
  std::uint64_t seed = 0x5fa5fa;
};

/// Human-readable scheme name for a config ("SFA EW +VAR", "SFA ED", …).
std::string SfaConfigName(const SfaConfig& config);

/// Learns an SFA scheme from `data` (Algorithm 1). `pool` parallelizes the
/// sample transform when given. The dataset must be z-normalized (or
/// include_dc set) for exactness.
std::unique_ptr<SfaScheme> TrainSfa(const Dataset& data,
                                    const SfaConfig& config,
                                    ThreadPool* pool = nullptr);

}  // namespace sfa
}  // namespace sofa

#endif  // SOFA_SFA_MCB_H_
