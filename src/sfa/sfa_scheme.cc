#include "sfa/sfa_scheme.h"

#include "util/check.h"

namespace sofa {
namespace sfa {

class SfaScheme::SfaScratch : public quant::SummaryScheme::Scratch {
 public:
  explicit SfaScratch(std::size_t num_coefficients)
      : coeffs(num_coefficients) {}

  dft::RealDftPlan::Scratch dft;
  std::vector<std::complex<float>> coeffs;
};

SfaScheme::SfaScheme(const SfaSpec& spec)
    : SummaryScheme(spec.selected.size(), spec.alphabet),
      name_(spec.name),
      series_length_(spec.series_length),
      plan_(spec.series_length),
      selected_(spec.selected) {
  SOFA_CHECK(!selected_.empty());
  SOFA_CHECK_EQ(spec.edges.size(), selected_.size());
  for (std::size_t dim = 0; dim < selected_.size(); ++dim) {
    const ValueRef ref = selected_[dim];
    SOFA_CHECK_LT(ref.coeff, plan_.num_coefficients());
    SOFA_CHECK(!(ref.imag && plan_.IsUnpaired(ref.coeff)))
        << "imaginary part of DC/Nyquist is identically zero";
    table_.SetDimension(dim, spec.edges[dim]);
    // Parseval weight: paired coefficients appear twice in the spectrum.
    weights_[dim] = plan_.IsUnpaired(ref.coeff) ? 1.0f : 2.0f;
  }
}

std::unique_ptr<quant::SummaryScheme::Scratch> SfaScheme::NewScratch() const {
  return std::make_unique<SfaScratch>(plan_.num_coefficients());
}

void SfaScheme::Project(const float* series, float* values_out,
                        Scratch* scratch) const {
  auto* sfa_scratch = static_cast<SfaScratch*>(scratch);
  SOFA_DCHECK(sfa_scratch != nullptr);
  plan_.Transform(series, sfa_scratch->coeffs.data(), &sfa_scratch->dft);
  for (std::size_t dim = 0; dim < selected_.size(); ++dim) {
    const ValueRef ref = selected_[dim];
    const std::complex<float>& c = sfa_scratch->coeffs[ref.coeff];
    values_out[dim] = ref.imag ? c.imag() : c.real();
  }
}

double SfaScheme::MeanSelectedCoefficientIndex() const {
  double sum = 0.0;
  for (const ValueRef ref : selected_) {
    sum += static_cast<double>(ref.coeff);
  }
  return sum / static_cast<double>(selected_.size());
}

}  // namespace sfa
}  // namespace sofa
