#include "sfa/mcb.h"

#include <algorithm>
#include <complex>
#include <numeric>
#include <vector>

#include "dft/real_dft.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sofa {
namespace sfa {
namespace {

// Variance of one candidate value across the sample matrix column.
double ColumnVariance(const std::vector<float>& column) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (float v : column) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(column.size());
  const double mean = sum / n;
  return std::max(0.0, sum_sq / n - mean * mean);
}

}  // namespace

std::string SfaConfigName(const SfaConfig& config) {
  std::string name = "SFA ";
  name += (config.binning == quant::BinningMethod::kEquiWidth) ? "EW" : "ED";
  if (config.variance_selection) {
    name += " +VAR";
  }
  return name;
}

std::unique_ptr<SfaScheme> TrainSfa(const Dataset& data,
                                    const SfaConfig& config,
                                    ThreadPool* pool) {
  SOFA_CHECK(!data.empty());
  SOFA_CHECK(config.word_length >= 1);
  const std::size_t n = data.length();
  const dft::RealDftPlan plan(n);

  // Candidate pool (Algorithm 1 restricts to the first coefficients).
  std::vector<ValueRef> candidates;
  const std::size_t max_coeff = plan.num_coefficients() - 1;  // last index
  const std::size_t first = config.include_dc ? 0 : 1;
  const std::size_t last =
      std::min(max_coeff, first + config.candidate_coefficients - 1);
  for (std::size_t k = first; k <= last; ++k) {
    candidates.push_back({static_cast<std::uint16_t>(k), false});
    if (!plan.IsUnpaired(k)) {
      candidates.push_back({static_cast<std::uint16_t>(k), true});
    }
  }
  SOFA_CHECK(candidates.size() >= config.word_length)
      << "candidate pool (" << candidates.size()
      << " values) smaller than word length " << config.word_length;

  // Step 1: sample without replacement (partial Fisher–Yates).
  std::size_t sample_count = static_cast<std::size_t>(
      config.sampling_ratio * static_cast<double>(data.size()));
  sample_count = std::max(sample_count, config.min_sample);
  sample_count = std::min(sample_count, data.size());
  std::vector<std::uint32_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0u);
  Rng rng(config.seed);
  for (std::size_t i = 0; i < sample_count; ++i) {
    const std::size_t j = i + rng.Below(indices.size() - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(sample_count);

  // Step 1b: DFT the sample; collect candidate values column-wise.
  std::vector<std::vector<float>> columns(
      candidates.size(), std::vector<float>(sample_count));
  auto transform_range = [&](std::size_t begin, std::size_t end,
                             std::size_t) {
    dft::RealDftPlan::Scratch scratch;
    std::vector<std::complex<float>> coeffs(plan.num_coefficients());
    for (std::size_t i = begin; i < end; ++i) {
      plan.Transform(data.row(indices[i]), coeffs.data(), &scratch);
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        const ValueRef ref = candidates[c];
        columns[c][i] =
            ref.imag ? coeffs[ref.coeff].imag() : coeffs[ref.coeff].real();
      }
    }
  };
  if (pool != nullptr) {
    ParallelFor(pool, sample_count, transform_range);
  } else {
    transform_range(0, sample_count, 0);
  }

  // Step 2: rank candidate values by variance (K-ARGMAX of Algorithm 1).
  std::vector<double> variances(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    variances[c] = ColumnVariance(columns[c]);
  }
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (config.variance_selection) {
    // Descending variance; evaluation order then favours early abandoning.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return variances[a] > variances[b];
                     });
  }
  order.resize(config.word_length);

  // Step 3: learn per-value bins.
  SfaSpec spec;
  spec.series_length = n;
  spec.alphabet = config.alphabet;
  spec.name = SfaConfigName(config);
  spec.selected.reserve(order.size());
  spec.edges.reserve(order.size());
  for (const std::size_t c : order) {
    spec.selected.push_back(candidates[c]);
    spec.edges.push_back(quant::LearnBreakpoints(
        std::move(columns[c]), config.alphabet, config.binning));
  }
  return std::make_unique<SfaScheme>(spec);
}

}  // namespace sfa
}  // namespace sofa
