#include "sfa/tlb.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/distance.h"
#include "quant/lbd.h"
#include "util/check.h"
#include "util/rng.h"

namespace sofa {
namespace sfa {

namespace {

// Sampled (query, candidate) evaluation shared by MeanTlb and
// MeanPruningPower: per query, per candidate, the squared true distance
// and squared LBD.
struct PairSamples {
  std::size_t num_queries = 0;
  std::size_t num_candidates = 0;
  // Row-major [query][candidate].
  std::vector<float> ed_sq;
  std::vector<float> lbd_sq;
};

PairSamples SamplePairs(const quant::SummaryScheme& scheme,
                        const Dataset& data, const Dataset& queries,
                        const TlbOptions& options) {
  SOFA_CHECK(!data.empty());
  SOFA_CHECK(!queries.empty());
  SOFA_CHECK_EQ(data.length(), scheme.series_length());
  SOFA_CHECK_EQ(queries.length(), scheme.series_length());

  Rng rng(options.seed);
  auto pick = [&rng](std::size_t available, std::size_t wanted) {
    std::vector<std::uint32_t> indices(available);
    std::iota(indices.begin(), indices.end(), 0u);
    const std::size_t count = std::min(available, wanted);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = i + rng.Below(indices.size() - i);
      std::swap(indices[i], indices[j]);
    }
    indices.resize(count);
    return indices;
  };
  const auto query_ids = pick(queries.size(), options.max_queries);
  const auto candidate_ids = pick(data.size(), options.max_candidates);

  const std::size_t l = scheme.word_length();
  auto scratch = scheme.NewScratch();
  std::vector<float> projection(l);

  // Pre-symbolize the candidates once.
  std::vector<std::uint8_t> words(candidate_ids.size() * l);
  for (std::size_t c = 0; c < candidate_ids.size(); ++c) {
    scheme.Symbolize(data.row(candidate_ids[c]), words.data() + c * l,
                     scratch.get(), projection.data());
  }

  PairSamples samples;
  samples.num_queries = query_ids.size();
  samples.num_candidates = candidate_ids.size();
  samples.ed_sq.resize(query_ids.size() * candidate_ids.size());
  samples.lbd_sq.resize(query_ids.size() * candidate_ids.size());
  for (std::size_t qi = 0; qi < query_ids.size(); ++qi) {
    const std::uint32_t q = query_ids[qi];
    scheme.Project(queries.row(q), projection.data(), scratch.get());
    for (std::size_t c = 0; c < candidate_ids.size(); ++c) {
      const std::size_t at = qi * candidate_ids.size() + c;
      samples.ed_sq[at] = SquaredEuclidean(
          queries.row(q), data.row(candidate_ids[c]), data.length());
      samples.lbd_sq[at] = quant::LbdSquared(
          scheme.table(), scheme.weights(), projection.data(),
          words.data() + c * l);
    }
  }
  return samples;
}

}  // namespace

double MeanTlb(const quant::SummaryScheme& scheme, const Dataset& data,
               const Dataset& queries, const TlbOptions& options) {
  const PairSamples samples = SamplePairs(scheme, data, queries, options);
  double sum_tlb = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < samples.ed_sq.size(); ++i) {
    if (samples.ed_sq[i] <= 0.0f) {
      continue;
    }
    sum_tlb += std::sqrt(static_cast<double>(samples.lbd_sq[i]) /
                         samples.ed_sq[i]);
    ++pairs;
  }
  return pairs == 0 ? 0.0 : sum_tlb / static_cast<double>(pairs);
}

double MeanPruningPower(const quant::SummaryScheme& scheme,
                        const Dataset& data, const Dataset& queries,
                        const TlbOptions& options) {
  const PairSamples samples = SamplePairs(scheme, data, queries, options);
  double sum_power = 0.0;
  for (std::size_t qi = 0; qi < samples.num_queries; ++qi) {
    const float* ed_row = samples.ed_sq.data() + qi * samples.num_candidates;
    const float* lbd_row =
        samples.lbd_sq.data() + qi * samples.num_candidates;
    // Exact 1-NN distance among the sampled candidates.
    float best = ed_row[0];
    for (std::size_t c = 1; c < samples.num_candidates; ++c) {
      best = std::min(best, ed_row[c]);
    }
    std::size_t pruned = 0;
    for (std::size_t c = 0; c < samples.num_candidates; ++c) {
      pruned += (lbd_row[c] > best) ? 1 : 0;
    }
    sum_power += static_cast<double>(pruned) /
                 static_cast<double>(samples.num_candidates);
  }
  return samples.num_queries == 0
             ? 0.0
             : sum_power / static_cast<double>(samples.num_queries);
}

}  // namespace sfa
}  // namespace sofa
