// TLB — tightness of lower bound (paper Section V-E).
//
// TLB(q, s) = LBD(E(q), E(s)) / ED(q, s) ∈ [0, 1]; higher means better
// pruning. The ablation tables (V, VI) report the mean TLB over query ×
// candidate pairs for each summarization variant.

#ifndef SOFA_SFA_TLB_H_
#define SOFA_SFA_TLB_H_

#include <cstddef>
#include <cstdint>

#include "core/dataset.h"
#include "quant/summary_scheme.h"

namespace sofa {
namespace sfa {

/// Sampling bounds for the TLB estimate.
struct TlbOptions {
  std::size_t max_queries = 32;
  std::size_t max_candidates = 256;
  std::uint64_t seed = 0x71b;
};

/// Mean TLB of `scheme` over sampled (query, candidate) pairs; pairs with
/// zero true distance are skipped. Both datasets must be z-normalized.
double MeanTlb(const quant::SummaryScheme& scheme, const Dataset& data,
               const Dataset& queries, const TlbOptions& options = {});

/// Pruning power (paper Section V-E, after [29]): the mean fraction of
/// candidates whose LBD already exceeds the query's exact 1-NN distance —
/// i.e. series a GEMINI engine discards without touching raw data. The
/// same sampling options as MeanTlb apply.
double MeanPruningPower(const quant::SummaryScheme& scheme,
                        const Dataset& data, const Dataset& queries,
                        const TlbOptions& options = {});

}  // namespace sfa
}  // namespace sofa

#endif  // SOFA_SFA_TLB_H_
