// SFA — Symbolic Fourier Approximation (paper Section IV-E) as a
// SummaryScheme.
//
// Projection: the series' DFT is taken (1/√n normalization), and
// word_length() of its real/imaginary coefficient values are extracted —
// either the lowest frequencies (classic SFA low-pass) or, as SOFA does,
// the values with the highest variance over a training sample. Quantization
// uses per-value learned (MCB) breakpoints. LBD weight per value: 2 for
// conjugate-paired coefficients, 1 for DC/Nyquist — the Parseval/Rafiei
// bound of Eq. 1.
//
// Schemes are built by TrainSfa (mcb.h) or directly from an SfaSpec.

#ifndef SOFA_SFA_SFA_SCHEME_H_
#define SOFA_SFA_SFA_SCHEME_H_

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dft/real_dft.h"
#include "quant/summary_scheme.h"

namespace sofa {
namespace sfa {

/// One selected DFT value: coefficient index and real/imaginary part.
struct ValueRef {
  std::uint16_t coeff = 0;
  bool imag = false;

  bool operator==(const ValueRef& other) const {
    return coeff == other.coeff && imag == other.imag;
  }
};

/// Complete description of a trained SFA summarization.
struct SfaSpec {
  std::size_t series_length = 0;
  std::size_t alphabet = 256;
  std::string name = "SFA";
  /// The word_length selected values, in LBD-evaluation order (the trainer
  /// orders them by descending variance so early abandoning sees the most
  /// discriminative values first).
  std::vector<ValueRef> selected;
  /// Learned interior edges per selected value (alphabet−1 each).
  std::vector<std::vector<float>> edges;
};

/// Learned Fourier-domain summarization.
class SfaScheme : public quant::SummaryScheme {
 public:
  explicit SfaScheme(const SfaSpec& spec);

  std::string name() const override { return name_; }

  std::size_t series_length() const override { return series_length_; }

  std::unique_ptr<Scratch> NewScratch() const override;

  using quant::SummaryScheme::Project;
  void Project(const float* series, float* values_out,
               Scratch* scratch) const override;

  /// The selected DFT values in evaluation order.
  const std::vector<ValueRef>& selected_values() const { return selected_; }

  /// Mean index of the selected Fourier coefficients — the Fig. 13
  /// statistic correlating frequency content with speedup.
  double MeanSelectedCoefficientIndex() const;

  /// The underlying DFT plan (shared, thread-safe).
  const dft::RealDftPlan& dft_plan() const { return plan_; }

 private:
  class SfaScratch;

  std::string name_;
  std::size_t series_length_;
  dft::RealDftPlan plan_;
  std::vector<ValueRef> selected_;
};

}  // namespace sfa
}  // namespace sofa

#endif  // SOFA_SFA_SFA_SCHEME_H_
