// Contract-checking macros used throughout the library.
//
// The library does not use exceptions (Google style); programmer errors and
// violated invariants abort with a message. SOFA_CHECK is always on,
// SOFA_DCHECK compiles out in NDEBUG builds.

#ifndef SOFA_UTIL_CHECK_H_
#define SOFA_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace sofa {
namespace internal {

/// Prints a fatal check failure to stderr and aborts the process.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Stream collector so call sites can write `SOFA_CHECK(x) << "context"`.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sofa

#define SOFA_CHECK(condition)                                        \
  while (!(condition))                                               \
  ::sofa::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define SOFA_CHECK_EQ(a, b) SOFA_CHECK((a) == (b))
#define SOFA_CHECK_NE(a, b) SOFA_CHECK((a) != (b))
#define SOFA_CHECK_LT(a, b) SOFA_CHECK((a) < (b))
#define SOFA_CHECK_LE(a, b) SOFA_CHECK((a) <= (b))
#define SOFA_CHECK_GT(a, b) SOFA_CHECK((a) > (b))
#define SOFA_CHECK_GE(a, b) SOFA_CHECK((a) >= (b))

#ifdef NDEBUG
#define SOFA_DCHECK(condition) \
  while (false && !(condition)) \
  ::sofa::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)
#else
#define SOFA_DCHECK(condition) SOFA_CHECK(condition)
#endif

#endif  // SOFA_UTIL_CHECK_H_
