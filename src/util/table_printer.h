// Column-aligned plain-text tables; the bench harnesses use this to print
// the paper's tables and figure series in a terminal-friendly form.

#ifndef SOFA_UTIL_TABLE_PRINTER_H_
#define SOFA_UTIL_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace sofa {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Writes the table (header, separator, rows) to `out`.
  void Print(std::ostream& out) const;

  /// Returns the rendered table as a string.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` fractional digits.
std::string FormatDouble(double value, int precision = 2);

/// Formats seconds as "123.4 ms" / "1.23 s" style human text.
std::string FormatSeconds(double seconds);

/// Formats a count with thousands separators ("1,017,586,504").
std::string FormatCount(std::uint64_t value);

}  // namespace sofa

#endif  // SOFA_UTIL_TABLE_PRINTER_H_
