#include "util/status.h"

namespace sofa {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kRejected:
      return "rejected";
    case StatusCode::kDeadlineExpired:
      return "deadline_expired";
    case StatusCode::kShutdown:
      return "shutdown";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyDeleted:
      return "already_deleted";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kQuotaExceeded:
      return "quota_exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kProtocolError:
      return "protocol_error";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sofa
