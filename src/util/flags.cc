#include "util/flags.h"

#include <cstdlib>

namespace sofa {
namespace {

bool IsFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!IsFlag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !IsFlag(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> Flags::GetList(const std::string& name) const {
  std::vector<std::string> items;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return items;
  }
  std::size_t start = 0;
  const std::string& s = it->second;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) {
        items.push_back(s.substr(start));
      }
      break;
    }
    if (comma > start) {
      items.push_back(s.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return items;
}

}  // namespace sofa
