#include "util/crc32.h"

namespace sofa {
namespace {

// 256-entry lookup table for the reflected polynomial, built once on
// first use (constant-initialized would also do, but a lazy local keeps
// the table out of every binary that never logs).
struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const Crc32Table table;
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace sofa
