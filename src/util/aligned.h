// Cache-line / SIMD aligned memory helpers.
//
// Data series matrices are stored in 64-byte aligned buffers so that AVX2 /
// AVX-512 loads can use aligned instructions and rows do not straddle cache
// lines more than necessary.

#ifndef SOFA_UTIL_ALIGNED_H_
#define SOFA_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "util/check.h"

namespace sofa {

/// Alignment (bytes) used for all numeric buffers; fits AVX-512 and the
/// typical x86 cache line.
inline constexpr std::size_t kBufferAlignment = 64;

/// Rounds `n` up to the next multiple of `multiple` (must be a power of two).
constexpr std::size_t RoundUp(std::size_t n, std::size_t multiple) {
  return (n + multiple - 1) & ~(multiple - 1);
}

/// A minimal aligned, heap-allocated array of trivially-copyable T.
///
/// Unlike std::vector it guarantees kBufferAlignment alignment and never
/// default-constructs elements on resize (contents of grown area are
/// zero-initialized). Movable, copyable.
template <typename T>
class AlignedVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedVector requires trivially copyable element types");

 public:
  AlignedVector() = default;

  explicit AlignedVector(std::size_t size) { resize(size); }

  AlignedVector(const AlignedVector& other) { CopyFrom(other); }

  AlignedVector& operator=(const AlignedVector& other) {
    if (this != &other) {
      Free();
      CopyFrom(other);
    }
    return *this;
  }

  AlignedVector(AlignedVector&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  AlignedVector& operator=(AlignedVector&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  ~AlignedVector() { Free(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    SOFA_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    SOFA_DCHECK(i < size_);
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  /// Resizes; newly exposed elements are zero-initialized. Growth is
  /// geometric so a resize-by-one-row loop (Dataset::Append) stays linear.
  void resize(std::size_t new_size) {
    if (new_size > capacity_) {
      Reallocate(new_size > capacity_ * 2 ? new_size : capacity_ * 2);
    }
    if (new_size > size_) {
      std::memset(data_ + size_, 0, (new_size - size_) * sizeof(T));
    }
    size_ = new_size;
  }

  void assign(std::size_t count, const T& value) {
    resize(count);
    for (std::size_t i = 0; i < count; ++i) data_[i] = value;
  }

  void clear() { size_ = 0; }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      Reallocate(capacity_ == 0 ? 16 : capacity_ * 2);
    }
    data_[size_++] = value;
  }

 private:
  void CopyFrom(const AlignedVector& other) {
    data_ = nullptr;
    size_ = capacity_ = 0;
    if (other.size_ > 0) {
      Reallocate(other.size_);
      std::memcpy(data_, other.data_, other.size_ * sizeof(T));
      size_ = other.size_;
    }
  }

  void Reallocate(std::size_t new_capacity) {
    const std::size_t bytes =
        RoundUp(new_capacity * sizeof(T), kBufferAlignment);
    T* fresh = static_cast<T*>(std::aligned_alloc(kBufferAlignment, bytes));
    SOFA_CHECK(fresh != nullptr) << "aligned_alloc of " << bytes << " bytes";
    if (size_ > 0) {
      std::memcpy(fresh, data_, size_ * sizeof(T));
    }
    std::free(data_);
    data_ = fresh;
    capacity_ = bytes / sizeof(T);
  }

  void Free() {
    std::free(data_);
    data_ = nullptr;
    size_ = capacity_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace sofa

#endif  // SOFA_UTIL_ALIGNED_H_
