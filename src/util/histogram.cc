#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sofa {
namespace {

// fetch_add / fetch_max for atomic<double> via CAS (C++17 has no native
// floating-point RMW operations).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (current < value &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

LogHistogram::LogHistogram(double min_value, double max_value,
                           std::size_t buckets_per_decade) {
  SOFA_CHECK(min_value > 0.0);
  SOFA_CHECK(max_value > min_value);
  SOFA_CHECK(buckets_per_decade > 0);
  min_value_ = min_value;
  log_min_ = std::log(min_value);
  log_growth_ = std::log(10.0) / static_cast<double>(buckets_per_decade);
  inv_log_growth_ = 1.0 / log_growth_;
  const double span = std::log(max_value) - log_min_;
  const std::size_t buckets =
      static_cast<std::size_t>(std::ceil(span * inv_log_growth_)) + 1;
  counts_ = std::vector<std::atomic<std::uint64_t>>(buckets);
}

std::size_t LogHistogram::BucketIndex(double value) const {
  if (value <= min_value_) {
    return 0;
  }
  const double raw = (std::log(value) - log_min_) * inv_log_growth_;
  const std::size_t bucket = static_cast<std::size_t>(raw);
  return std::min(bucket, counts_.size() - 1);
}

double LogHistogram::BucketLowerEdge(std::size_t bucket) const {
  return std::exp(log_min_ + static_cast<double>(bucket) * log_growth_);
}

void LogHistogram::Record(double value) {
  value = std::max(value, 0.0);
  counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMax(&max_, value);
}

std::uint64_t LogHistogram::TotalCount() const {
  return total_.load(std::memory_order_relaxed);
}

double LogHistogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

double LogHistogram::Mean() const {
  const std::uint64_t n = TotalCount();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double LogHistogram::MaxValue() const {
  return max_.load(std::memory_order_relaxed);
}

double LogHistogram::Percentile(double p) const {
  const std::uint64_t total = TotalCount();
  if (total == 0) {
    return 0.0;
  }
  p = std::min(100.0, std::max(0.0, p));
  const double target = p / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::uint64_t count = counts_[b].load(std::memory_order_relaxed);
    if (count == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + count) >= target) {
      // Interpolate inside the bucket, capped by the observed maximum. The
      // terminal bucket has no meaningful upper edge (it absorbs overflow),
      // so there the interpolation runs up to the observed maximum itself.
      const double lower = BucketLowerEdge(b);
      const double upper = b + 1 == counts_.size()
                               ? std::max(MaxValue(), lower)
                               : BucketLowerEdge(b + 1);
      const double within =
          (target - static_cast<double>(cumulative)) / static_cast<double>(count);
      return std::min(lower + (upper - lower) * within, MaxValue());
    }
    cumulative += count;
  }
  return MaxValue();
}

std::uint64_t LogHistogram::BucketCount(std::size_t b) const {
  SOFA_CHECK(b < counts_.size());
  return counts_[b].load(std::memory_order_relaxed);
}

double LogHistogram::BucketUpperEdge(std::size_t b) const {
  SOFA_CHECK(b < counts_.size());
  return BucketLowerEdge(b + 1);
}

void LogHistogram::Merge(const LogHistogram& other) {
  SOFA_CHECK(counts_.size() == other.counts_.size());
  SOFA_CHECK(min_value_ == other.min_value_);
  SOFA_CHECK(log_growth_ == other.log_growth_);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::uint64_t count =
        other.counts_[b].load(std::memory_order_relaxed);
    if (count != 0) {
      counts_[b].fetch_add(count, std::memory_order_relaxed);
    }
  }
  total_.fetch_add(other.total_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  AtomicAdd(&sum_, other.sum_.load(std::memory_order_relaxed));
  AtomicMax(&max_, other.max_.load(std::memory_order_relaxed));
}

void LogHistogram::Reset() {
  for (auto& count : counts_) {
    count.store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

}  // namespace sofa
