// A fixed-size worker pool plus the parallel-for helpers used by the index
// builder, the query engine and the scan baselines.
//
// MESSI-style engines want two styles of parallelism:
//   * "run this closure once per worker" (ParallelRun) — e.g. query workers
//     that loop over shared priority queues, and
//   * "split this range across workers" (ParallelFor / DynamicParallelFor) —
//     e.g. bulk summarization of N series.

#ifndef SOFA_UTIL_THREAD_POOL_H_
#define SOFA_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sofa {

/// Fixed-size thread pool with a FIFO task queue.
///
/// Thread-safe. Tasks may submit further tasks. Wait() blocks until the
/// queue is drained and all running tasks finished.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (minimum 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return threads_.size(); }

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Number of hardware threads (at least 1).
std::size_t HardwareThreads();

/// Runs `fn(worker_id)` once on each of `num_workers` pool workers and waits
/// for all of them.
void ParallelRun(ThreadPool* pool, std::size_t num_workers,
                 const std::function<void(std::size_t worker)>& fn);

/// Statically splits [0, count) into one contiguous chunk per worker and
/// runs `fn(begin, end, worker)` in parallel. Chunks may be empty.
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t begin, std::size_t end,
                                          std::size_t worker)>& fn);

/// Dynamically hands out chunks of `grain` indices from [0, count) to
/// workers; good for skewed per-item costs (e.g. per-subtree build).
void DynamicParallelFor(
    ThreadPool* pool, std::size_t count, std::size_t grain,
    const std::function<void(std::size_t begin, std::size_t end,
                             std::size_t worker)>& fn);

}  // namespace sofa

#endif  // SOFA_UTIL_THREAD_POOL_H_
