// Small filesystem helpers shared by the durability layers (WAL segment
// directories, generation stores): recursive directory creation and
// fsync of files/directories by path.

#ifndef SOFA_UTIL_FSUTIL_H_
#define SOFA_UTIL_FSUTIL_H_

#include <string>

namespace sofa {

/// mkdir -p: creates every missing component; true when `dir` exists (or
/// already existed) as a directory afterwards.
bool MakeDirs(const std::string& dir);

/// Opens `path` read-only (O_DIRECTORY when `directory`) and fsyncs it —
/// how renames and freshly written files are made durable.
bool FsyncPath(const std::string& path, bool directory);

}  // namespace sofa

#endif  // SOFA_UTIL_FSUTIL_H_
