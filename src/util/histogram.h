// Concurrent log-bucketed histogram for positive measurements (latencies,
// queue depths). Recording is lock-free (relaxed atomic bucket counters),
// so pool workers can record from the hot path; reading produces a
// consistent-enough snapshot for serving dashboards and benches.

#ifndef SOFA_UTIL_HISTOGRAM_H_
#define SOFA_UTIL_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sofa {

/// Geometric-bucket histogram over [min_value, max_value): bucket edges
/// grow by a constant factor, giving bounded relative error for
/// percentiles. Values outside the range are clamped into the first/last
/// bucket.
class LogHistogram {
 public:
  /// `buckets_per_decade` controls resolution: 20 gives ~12% relative
  /// error, plenty for pXX latency reporting.
  LogHistogram(double min_value, double max_value,
               std::size_t buckets_per_decade = 20);

  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// Records one measurement. Thread-safe, lock-free.
  void Record(double value);

  /// Number of recorded measurements.
  std::uint64_t TotalCount() const;

  /// Sum of recorded measurements (for the mean).
  double Sum() const;

  /// Mean of recorded measurements; 0 when empty.
  double Mean() const;

  /// Largest recorded measurement; 0 when empty.
  double MaxValue() const;

  /// Linear-interpolated percentile estimate, p in [0, 100]; 0 when empty.
  double Percentile(double p) const;

  /// Resets all counters to zero. Not atomic w.r.t. concurrent Record().
  void Reset();

 private:
  std::size_t BucketIndex(double value) const;
  double BucketLowerEdge(std::size_t bucket) const;

  double min_value_;
  double log_min_;
  double inv_log_growth_;  // 1 / ln(growth factor)
  double log_growth_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

}  // namespace sofa

#endif  // SOFA_UTIL_HISTOGRAM_H_
