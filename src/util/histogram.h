// Concurrent log-bucketed histogram for positive measurements (latencies,
// queue depths). Recording is lock-free (relaxed atomic bucket counters),
// so pool workers can record from the hot path; reading produces a
// consistent-enough snapshot for serving dashboards and benches.

#ifndef SOFA_UTIL_HISTOGRAM_H_
#define SOFA_UTIL_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sofa {

/// Geometric-bucket histogram over [min_value, max_value): bucket edges
/// grow by a constant factor, giving bounded relative error for
/// percentiles. Values outside the range are clamped into the first/last
/// bucket.
class LogHistogram {
 public:
  /// `buckets_per_decade` controls resolution: 20 gives ~12% relative
  /// error, plenty for pXX latency reporting.
  LogHistogram(double min_value, double max_value,
               std::size_t buckets_per_decade = 20);

  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// Records one measurement. Thread-safe, lock-free.
  void Record(double value);

  /// Number of recorded measurements.
  std::uint64_t TotalCount() const;

  /// Sum of recorded measurements (for the mean).
  double Sum() const;

  /// Mean of recorded measurements; 0 when empty.
  double Mean() const;

  /// Largest recorded measurement; 0 when empty.
  double MaxValue() const;

  /// Linear-interpolated percentile estimate, p in [0, 100]; 0 when empty.
  /// Within the terminal (overflow) bucket the interpolation runs from the
  /// bucket's lower edge to the observed maximum, so tail percentiles stay
  /// meaningful even for clamped out-of-range samples.
  double Percentile(double p) const;

  /// Adds every bucket count (plus total/sum/max) of `other` into this
  /// histogram. Both histograms must share the same geometry (min value,
  /// growth factor, bucket count). Thread-safe against concurrent Record()
  /// on either side; the merged snapshot is only as consistent as any
  /// concurrent read.
  void Merge(const LogHistogram& other);

  /// Number of buckets (the last one absorbs out-of-range overflow).
  std::size_t NumBuckets() const { return counts_.size(); }

  /// Count recorded in bucket `b`.
  std::uint64_t BucketCount(std::size_t b) const;

  /// Inclusive upper edge of bucket `b` (the lower edge of bucket b+1).
  /// For the terminal bucket this is a finite edge; exporters should
  /// publish it as +Inf since the bucket absorbs overflow.
  double BucketUpperEdge(std::size_t b) const;

  /// Resets all counters to zero. Not atomic w.r.t. concurrent Record().
  void Reset();

 private:
  std::size_t BucketIndex(double value) const;
  double BucketLowerEdge(std::size_t bucket) const;

  double min_value_;
  double log_min_;
  double inv_log_growth_;  // 1 / ln(growth factor)
  double log_growth_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

}  // namespace sofa

#endif  // SOFA_UTIL_HISTOGRAM_H_
