// Deterministic pseudo-random number generation.
//
// All synthetic datasets and property tests derive from this generator so
// that every experiment in the repository is reproducible from a seed.
// The engine is xoshiro256**, seeded via splitmix64.

#ifndef SOFA_UTIL_RNG_H_
#define SOFA_UTIL_RNG_H_

#include <cstdint>

namespace sofa {

/// xoshiro256** pseudo-random generator (Blackman & Vigna).
///
/// Satisfies UniformRandomBitGenerator, so it can also drive <random>
/// distributions, though the members below cover everything the library
/// needs without libstdc++'s distribution-state pitfalls.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  std::uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound);

  /// Standard normal deviate (Box–Muller, cached pair).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Derives an independent child generator; used to hand one stream per
  /// worker thread or per dataset without correlation.
  Rng Fork();

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace sofa

#endif  // SOFA_UTIL_RNG_H_
