#include "util/timer.h"

namespace sofa {

double WallTimer::Seconds() const {
  const auto elapsed = Clock::now() - start_;
  return std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
      .count();
}

}  // namespace sofa
