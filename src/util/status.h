// The one status vocabulary of the serving stack.
//
// Every fallible serving-path API — query admission (service::
// SearchService), mutation admission (ingest::Compactor), the network
// protocol (net/) — reports outcomes from this single StatusCode
// taxonomy, and the wire protocol transmits the numeric code verbatim
// (docs/PROTOCOL.md), so a network client sees exactly the same failure
// vocabulary an in-process embedder does. Status carries a code plus an
// optional human-readable message; StatusOr<T> is the value-or-status
// return for APIs that produce a result (e.g. Insert's assigned id).
//
// Codes are wire format: values are stable, appended-only, and encoded
// as u16. Renumbering is a protocol break.

#ifndef SOFA_UTIL_STATUS_H_
#define SOFA_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace sofa {

/// Outcome taxonomy shared by the in-process APIs and the wire protocol.
enum class StatusCode : std::uint16_t {
  kOk = 0,               // done exactly as asked
  kRejected = 1,         // shed at admission (queue/backpressure full) — retry
  kDeadlineExpired = 2,  // deadline passed before the work ran
  kShutdown = 3,         // the serving component is stopping
  kInvalidArgument = 4,  // malformed request (wrong length, bad id, ...)
  kNotFound = 5,         // the named entity never existed
  kAlreadyDeleted = 6,   // delete of an id that is already deleted
  kIoError = 7,          // durable write failed — not applied; may retry
  kQuotaExceeded = 8,    // per-tenant in-flight quota hit — retry later
  kUnavailable = 9,      // the capability is not attached (e.g. mutations
                         // on a read-only server, admin op without store)
  kProtocolError = 10,   // wire framing/payload could not be understood
  kInternal = 11,        // invariant violation on the far side
};

/// Stable lower-case name of a code ("ok", "rejected", ...); never null.
const char* StatusCodeName(StatusCode code);

/// A StatusCode plus optional context message. Cheap to copy when ok
/// (empty message), movable always.
class Status {
 public:
  Status() = default;
  explicit Status(StatusCode code, std::string message = "")
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<name>: <message>" (name alone when the message is empty).
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }
  bool operator!=(const Status& other) const { return code_ != other.code_; }
  bool operator==(StatusCode code) const { return code_ == code; }
  bool operator!=(StatusCode code) const { return code_ != code; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Convenience constructors mirroring the taxonomy.
inline Status OkStatus() { return Status(); }
inline Status RejectedError(std::string m = "") {
  return Status(StatusCode::kRejected, std::move(m));
}
inline Status DeadlineExpiredError(std::string m = "") {
  return Status(StatusCode::kDeadlineExpired, std::move(m));
}
inline Status ShutdownError(std::string m = "") {
  return Status(StatusCode::kShutdown, std::move(m));
}
inline Status InvalidArgumentError(std::string m = "") {
  return Status(StatusCode::kInvalidArgument, std::move(m));
}
inline Status NotFoundError(std::string m = "") {
  return Status(StatusCode::kNotFound, std::move(m));
}
inline Status AlreadyDeletedError(std::string m = "") {
  return Status(StatusCode::kAlreadyDeleted, std::move(m));
}
inline Status IoError(std::string m = "") {
  return Status(StatusCode::kIoError, std::move(m));
}
inline Status QuotaExceededError(std::string m = "") {
  return Status(StatusCode::kQuotaExceeded, std::move(m));
}
inline Status UnavailableError(std::string m = "") {
  return Status(StatusCode::kUnavailable, std::move(m));
}
inline Status ProtocolError(std::string m = "") {
  return Status(StatusCode::kProtocolError, std::move(m));
}
inline Status InternalError(std::string m = "") {
  return Status(StatusCode::kInternal, std::move(m));
}

/// Value-or-Status. Accessing value() of a non-ok StatusOr aborts
/// (SOFA_CHECK — the library's no-exceptions contract).
template <typename T>
class StatusOr {
 public:
  /// Non-ok status. Constructing from an ok status without a value is a
  /// programmer error.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SOFA_CHECK(!status_.ok()) << "StatusOr needs a value when ok";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  StatusCode code() const { return status_.code(); }
  bool operator==(StatusCode code) const { return status_.code() == code; }
  bool operator!=(StatusCode code) const { return status_.code() != code; }

  const T& value() const {
    SOFA_CHECK(ok()) << "value() on " << status_.ToString();
    return *value_;
  }
  T& value() {
    SOFA_CHECK(ok()) << "value() on " << status_.ToString();
    return *value_;
  }
  const T& operator*() const { return value(); }
  T& operator*() { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // ok iff value_ holds
  std::optional<T> value_;
};

}  // namespace sofa

#endif  // SOFA_UTIL_STATUS_H_
