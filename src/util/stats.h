// Descriptive and inferential statistics used by the benchmark harnesses:
// run-time summaries (mean/median/percentiles), the Fig. 13 correlation, the
// Fig. 1 distribution diagnostics, and the Fig. 15 critical-difference
// analysis (average ranks + Wilcoxon signed-rank with Holm correction).

#ifndef SOFA_UTIL_STATS_H_
#define SOFA_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace sofa {
namespace stats {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance; 0 for fewer than two values.
double Variance(const std::vector<double>& values);

/// Sample standard deviation.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated percentile, p in [0, 100]. Input need not be sorted.
double Percentile(std::vector<double> values, double p);

/// Median (50th percentile).
double Median(std::vector<double> values);

/// Smallest / largest element; 0 for empty input.
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// Standardized third moment; 0 for degenerate inputs.
double Skewness(const std::vector<double>& values);

/// Excess kurtosis (Normal == 0); 0 for degenerate inputs.
double ExcessKurtosis(const std::vector<double>& values);

/// Pearson product-moment correlation of two equal-length vectors.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Kolmogorov–Smirnov statistic of `values` against the standard Normal
/// distribution N(0,1); the Fig. 1 (bottom) non-Gaussianity diagnostic.
double KsStatisticVsStdNormal(std::vector<double> values);

/// Standard normal CDF.
double StdNormalCdf(double x);

/// Fractional ranks of `values` (1 = smallest); ties get the average rank.
std::vector<double> FractionalRanks(const std::vector<double>& values);

/// Mean rank per method over a [methods][observations] score matrix where
/// *lower scores are better* (ranks computed per observation column-wise).
std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& scores_per_method);

/// Two-sided p-value of the Wilcoxon signed-rank test for paired samples,
/// using the normal approximation with tie correction; pairs with zero
/// difference are dropped (Wilcoxon's convention). Returns 1.0 if fewer
/// than one non-zero pair remains.
double WilcoxonSignedRankP(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Holm step-down adjustment of p-values (returns adjusted p-values in the
/// original order, clipped to 1).
std::vector<double> HolmAdjust(const std::vector<double>& p_values);

/// Result of the Fig. 15-style post-hoc analysis.
struct CriticalDifferenceResult {
  /// Mean rank per method (lower is better), original method order.
  std::vector<double> mean_ranks;
  /// Groups of method indices that are statistically indistinguishable
  /// (maximal cliques of non-significant pairwise differences, as drawn by
  /// the horizontal bars of a critical-difference diagram).
  std::vector<std::vector<std::size_t>> cliques;
  /// Holm-adjusted pairwise p-values, indexed [i][j] (symmetric).
  std::vector<std::vector<double>> pairwise_p;
};

/// Runs the average-rank + Wilcoxon-Holm analysis over a
/// [methods][observations] score matrix where lower scores are better.
CriticalDifferenceResult CriticalDifference(
    const std::vector<std::vector<double>>& scores_per_method,
    double alpha = 0.05);

}  // namespace stats
}  // namespace sofa

#endif  // SOFA_UTIL_STATS_H_
