#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace sofa {
namespace stats {

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  const std::size_t n = values.size();
  if (n < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) {
    const double d = v - mean;
    sum_sq += d * d;
  }
  return sum_sq / static_cast<double>(n - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  SOFA_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) {
  return Percentile(std::move(values), 50.0);
}

double Min(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  return *std::max_element(values.begin(), values.end());
}

namespace {

// Central moment of the given order.
double CentralMoment(const std::vector<double>& values, int order) {
  const double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) {
    sum += std::pow(v - mean, order);
  }
  return sum / static_cast<double>(values.size());
}

}  // namespace

double Skewness(const std::vector<double>& values) {
  if (values.size() < 3) {
    return 0.0;
  }
  const double m2 = CentralMoment(values, 2);
  if (m2 <= 0.0) {
    return 0.0;
  }
  return CentralMoment(values, 3) / std::pow(m2, 1.5);
}

double ExcessKurtosis(const std::vector<double>& values) {
  if (values.size() < 4) {
    return 0.0;
  }
  const double m2 = CentralMoment(values, 2);
  if (m2 <= 0.0) {
    return 0.0;
  }
  return CentralMoment(values, 4) / (m2 * m2) - 3.0;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  SOFA_CHECK_EQ(x.size(), y.size());
  const std::size_t n = x.size();
  if (n < 2) {
    return 0.0;
  }
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

double StdNormalCdf(double x) {
  return 0.5 * std::erfc(-x * M_SQRT1_2);
}

double KsStatisticVsStdNormal(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double ks = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double cdf = StdNormalCdf(values[i]);
    const double empirical_hi = static_cast<double>(i + 1) / n;
    const double empirical_lo = static_cast<double>(i) / n;
    ks = std::max(ks, std::max(empirical_hi - cdf, cdf - empirical_lo));
  }
  return ks;
}

std::vector<double> FractionalRanks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    // Positions i..j (0-based) share the average 1-based rank.
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      ranks[order[k]] = avg_rank;
    }
    i = j + 1;
  }
  return ranks;
}

std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& scores_per_method) {
  const std::size_t methods = scores_per_method.size();
  SOFA_CHECK(methods > 0);
  const std::size_t observations = scores_per_method[0].size();
  for (const auto& row : scores_per_method) {
    SOFA_CHECK_EQ(row.size(), observations);
  }
  std::vector<double> sums(methods, 0.0);
  std::vector<double> column(methods);
  for (std::size_t obs = 0; obs < observations; ++obs) {
    for (std::size_t m = 0; m < methods; ++m) {
      column[m] = scores_per_method[m][obs];
    }
    const std::vector<double> ranks = FractionalRanks(column);
    for (std::size_t m = 0; m < methods; ++m) {
      sums[m] += ranks[m];
    }
  }
  for (double& s : sums) {
    s /= static_cast<double>(std::max<std::size_t>(1, observations));
  }
  return sums;
}

double WilcoxonSignedRankP(const std::vector<double>& a,
                           const std::vector<double>& b) {
  SOFA_CHECK_EQ(a.size(), b.size());
  std::vector<double> diffs;
  diffs.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d != 0.0) {
      diffs.push_back(d);
    }
  }
  const std::size_t n = diffs.size();
  if (n < 1) {
    return 1.0;
  }
  std::vector<double> abs_diffs(n);
  for (std::size_t i = 0; i < n; ++i) {
    abs_diffs[i] = std::fabs(diffs[i]);
  }
  const std::vector<double> ranks = FractionalRanks(abs_diffs);
  double w_plus = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (diffs[i] > 0.0) {
      w_plus += ranks[i];
    }
  }
  const double nd = static_cast<double>(n);
  const double mean_w = nd * (nd + 1.0) / 4.0;
  // Tie correction: subtract sum(t^3 - t)/48 over tie groups of |diffs|.
  double tie_term = 0.0;
  {
    std::vector<double> sorted_abs = abs_diffs;
    std::sort(sorted_abs.begin(), sorted_abs.end());
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i;
      while (j + 1 < n && sorted_abs[j + 1] == sorted_abs[i]) {
        ++j;
      }
      const double t = static_cast<double>(j - i + 1);
      tie_term += t * t * t - t;
      i = j + 1;
    }
  }
  const double var_w = nd * (nd + 1.0) * (2.0 * nd + 1.0) / 24.0 - tie_term / 48.0;
  if (var_w <= 0.0) {
    return 1.0;
  }
  // Continuity-corrected z statistic.
  const double delta = w_plus - mean_w;
  const double z = (delta - (delta > 0 ? 0.5 : delta < 0 ? -0.5 : 0.0)) /
                   std::sqrt(var_w);
  const double p = 2.0 * (1.0 - StdNormalCdf(std::fabs(z)));
  return std::min(1.0, std::max(0.0, p));
}

std::vector<double> HolmAdjust(const std::vector<double>& p_values) {
  const std::size_t m = p_values.size();
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return p_values[a] < p_values[b];
  });
  std::vector<double> adjusted(m, 0.0);
  double running_max = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double scaled =
        p_values[order[i]] * static_cast<double>(m - i);
    running_max = std::max(running_max, std::min(1.0, scaled));
    adjusted[order[i]] = running_max;
  }
  return adjusted;
}

CriticalDifferenceResult CriticalDifference(
    const std::vector<std::vector<double>>& scores_per_method, double alpha) {
  const std::size_t methods = scores_per_method.size();
  CriticalDifferenceResult result;
  result.mean_ranks = AverageRanks(scores_per_method);

  // All pairwise Wilcoxon tests, Holm-adjusted jointly.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<double> raw_p;
  for (std::size_t i = 0; i < methods; ++i) {
    for (std::size_t j = i + 1; j < methods; ++j) {
      pairs.emplace_back(i, j);
      raw_p.push_back(
          WilcoxonSignedRankP(scores_per_method[i], scores_per_method[j]));
    }
  }
  const std::vector<double> adj = HolmAdjust(raw_p);
  result.pairwise_p.assign(methods, std::vector<double>(methods, 0.0));
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto [i, j] = pairs[k];
    result.pairwise_p[i][j] = adj[k];
    result.pairwise_p[j][i] = adj[k];
  }

  // Build cliques the way CD diagrams draw bars: sort methods by mean rank;
  // for each start, extend to the longest run whose *all* pairs are
  // non-significant; keep maximal runs only.
  std::vector<std::size_t> by_rank(methods);
  std::iota(by_rank.begin(), by_rank.end(), std::size_t{0});
  std::sort(by_rank.begin(), by_rank.end(), [&](std::size_t a, std::size_t b) {
    return result.mean_ranks[a] < result.mean_ranks[b];
  });
  std::vector<std::vector<std::size_t>> cliques;
  for (std::size_t start = 0; start < methods; ++start) {
    std::size_t end = start;
    for (std::size_t next = start + 1; next < methods; ++next) {
      bool all_ns = true;
      for (std::size_t k = start; k < next && all_ns; ++k) {
        all_ns = result.pairwise_p[by_rank[k]][by_rank[next]] >= alpha;
      }
      if (!all_ns) {
        break;
      }
      end = next;
    }
    if (end > start) {
      // Drop runs contained in the previous (longer) run.
      if (!cliques.empty()) {
        const auto& prev = cliques.back();
        const std::size_t prev_start = static_cast<std::size_t>(
            std::find(by_rank.begin(), by_rank.end(), prev.front()) -
            by_rank.begin());
        const std::size_t prev_end = prev_start + prev.size() - 1;
        if (start >= prev_start && end <= prev_end) {
          continue;
        }
      }
      std::vector<std::size_t> clique;
      for (std::size_t k = start; k <= end; ++k) {
        clique.push_back(by_rank[k]);
      }
      cliques.push_back(std::move(clique));
    }
  }
  result.cliques = std::move(cliques);
  return result;
}

}  // namespace stats
}  // namespace sofa
