#include "util/table_printer.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace sofa {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SOFA_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SOFA_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c] << ' ';
    }
    out << "|\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TablePrinter::ToString() const {
  std::ostringstream out;
  Print(out);
  return out.str();
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string FormatSeconds(double seconds) {
  std::ostringstream out;
  out << std::fixed;
  if (seconds < 1e-3) {
    out << std::setprecision(1) << seconds * 1e6 << " us";
  } else if (seconds < 1.0) {
    out << std::setprecision(1) << seconds * 1e3 << " ms";
  } else {
    out << std::setprecision(2) << seconds << " s";
  }
  return out.str();
}

std::string FormatCount(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  result.reserve(digits.size() + digits.size() / 3);
  std::size_t leading = digits.size() % 3;
  if (leading == 0) {
    leading = 3;
  }
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - leading) % 3 == 0 && i >= leading) {
      result.push_back(',');
    }
    result.push_back(digits[i]);
  }
  return result;
}

}  // namespace sofa
