#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace sofa {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : state_) {
    lane = SplitMix64(&sm);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  SOFA_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::Below(std::uint64_t bound) {
  SOFA_DCHECK(bound > 0);
  // Lemire's nearly-divisionless bounded generation, rejection-free in the
  // common case.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  while (true) {
    const std::uint64_t r = Next();
    const unsigned __int128 product =
        static_cast<unsigned __int128>(r) * bound;
    if (static_cast<std::uint64_t>(product) >= threshold) {
      return static_cast<std::uint64_t>(product >> 64);
    }
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller on two fresh uniforms; u is kept away from zero.
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 0.0);
  const double v = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u));
  const double angle = 2.0 * M_PI * v;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

Rng Rng::Fork() {
  // Two draws of the parent feed the child's seed; streams of parent and
  // child subsequently never share state.
  const std::uint64_t a = Next();
  const std::uint64_t b = Next();
  return Rng(a ^ Rotl(b, 32) ^ 0xa02b'dbf7'bb3c'0a7ULL);
}

}  // namespace sofa
