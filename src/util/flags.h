// Minimal command-line flag parsing for the examples and bench harnesses.
// Supports "--name=value", "--name value" and boolean "--name". Note the
// space form is greedy: "--flag positional" binds "positional" to --flag;
// use "--flag=..." or put positional arguments before bare boolean flags.

#ifndef SOFA_UTIL_FLAGS_H_
#define SOFA_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sofa {

/// Parses argv once; typed getters fall back to defaults for absent flags.
class Flags {
 public:
  Flags(int argc, char** argv);

  /// True if the flag was present on the command line.
  bool Has(const std::string& name) const;

  std::int64_t GetInt(const std::string& name, std::int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Splits a comma-separated flag into items; default empty.
  std::vector<std::string> GetList(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace sofa

#endif  // SOFA_UTIL_FLAGS_H_
