// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// framing every write-ahead-log record (src/ingest/wal.h). Table-driven,
// byte-at-a-time: fast enough that WAL appends stay I/O-bound, with no
// SSE4.2 dependency (the SIMD policy reserves -m flags for the distance
// kernels).

#ifndef SOFA_UTIL_CRC32_H_
#define SOFA_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace sofa {

/// CRC-32 of `size` bytes at `data`. `seed` chains incremental updates:
/// Crc32(b, n1+n2) == Crc32(b+n1, n2, Crc32(b, n1)). The empty buffer
/// with seed 0 hashes to 0.
std::uint32_t Crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace sofa

#endif  // SOFA_UTIL_CRC32_H_
