#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace sofa {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  SOFA_DCHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

std::size_t HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ParallelRun(ThreadPool* pool, std::size_t num_workers,
                 const std::function<void(std::size_t)>& fn) {
  SOFA_CHECK(pool != nullptr);
  SOFA_CHECK(num_workers > 0);
  if (num_workers == 1) {
    fn(0);  // inline fast path: no wakeup latency for serial execution
    return;
  }
  std::atomic<std::size_t> remaining(num_workers);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (std::size_t w = 0; w < num_workers; ++w) {
    pool->Submit([&, w] {
      fn(w);
      if (remaining.fetch_sub(1) == 1) {
        std::unique_lock<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)>& fn) {
  SOFA_CHECK(pool != nullptr);
  if (count == 0) {
    return;
  }
  const std::size_t workers = pool->size();
  const std::size_t chunk = (count + workers - 1) / workers;
  ParallelRun(pool, workers, [&](std::size_t w) {
    const std::size_t begin = std::min(count, w * chunk);
    const std::size_t end = std::min(count, begin + chunk);
    if (begin < end) {
      fn(begin, end, w);
    }
  });
}

void DynamicParallelFor(ThreadPool* pool, std::size_t count, std::size_t grain,
                        const std::function<void(std::size_t, std::size_t,
                                                 std::size_t)>& fn) {
  SOFA_CHECK(pool != nullptr);
  SOFA_CHECK(grain > 0);
  if (count == 0) {
    return;
  }
  std::atomic<std::size_t> next(0);
  ParallelRun(pool, pool->size(), [&](std::size_t w) {
    while (true) {
      const std::size_t begin = next.fetch_add(grain);
      if (begin >= count) {
        return;
      }
      fn(begin, std::min(count, begin + grain), w);
    }
  });
}

}  // namespace sofa
