// Wall-clock timing helpers for the benchmark harnesses.

#ifndef SOFA_UTIL_TIMER_H_
#define SOFA_UTIL_TIMER_H_

#include <chrono>

namespace sofa {

/// High-resolution wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double Seconds() const;

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` and returns its wall-clock duration in seconds.
template <typename Fn>
double TimeIt(Fn&& fn) {
  WallTimer timer;
  fn();
  return timer.Seconds();
}

}  // namespace sofa

#endif  // SOFA_UTIL_TIMER_H_
