#include "util/fsutil.h"

#include <cerrno>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace sofa {

bool MakeDirs(const std::string& dir) {
  std::string prefix;
  std::size_t at = 0;
  while (at < dir.size()) {
    const std::size_t next = dir.find('/', at);
    const std::size_t end = next == std::string::npos ? dir.size() : next;
    prefix.append(dir, at, end - at + (next == std::string::npos ? 0 : 1));
    at = end + 1;
    if (prefix.empty() || prefix == "/") {
      continue;
    }
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return false;
    }
  }
  struct stat info;
  return ::stat(dir.c_str(), &info) == 0 && S_ISDIR(info.st_mode);
}

bool FsyncPath(const std::string& path, bool directory) {
  const int fd =
      ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) {
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace sofa
