#include "core/distance.h"

namespace sofa {
namespace scalar {

float SquaredEuclidean(const float* a, const float* b, std::size_t n) {
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float SquaredEuclideanEarlyAbandon(const float* a, const float* b,
                                   std::size_t n, float bound) {
  float sum = 0.0f;
  std::size_t i = 0;
  // Check the abandon condition once per 8 accumulated terms; checking every
  // element costs more than it saves.
  while (i + 8 <= n) {
    for (std::size_t j = 0; j < 8; ++j) {
      const float d = a[i + j] - b[i + j];
      sum += d * d;
    }
    i += 8;
    if (sum > bound) {
      return sum;
    }
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float DotProduct(const float* a, const float* b, std::size_t n) {
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

float SquaredNorm(const float* a, std::size_t n) {
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    sum += a[i] * a[i];
  }
  return sum;
}

}  // namespace scalar

bool CpuSupportsAvx512() {
#if defined(SOFA_COMPILE_AVX512) && defined(__GNUC__)
  static const bool supported = __builtin_cpu_supports("avx512f") &&
                                __builtin_cpu_supports("avx512bw") &&
                                __builtin_cpu_supports("avx512dq");
  return supported;
#else
  return false;
#endif
}

const char* DispatchLevelName() {
#if defined(SOFA_COMPILE_AVX512)
  if (CpuSupportsAvx512()) {
    return "avx512";
  }
#endif
#if defined(SOFA_HAVE_AVX2)
  return "avx2";
#else
  return "scalar";
#endif
}

float SquaredEuclidean(const float* a, const float* b, std::size_t n) {
#if defined(SOFA_COMPILE_AVX512)
  if (CpuSupportsAvx512()) {
    return avx512::SquaredEuclidean(a, b, n);
  }
#endif
#if defined(SOFA_HAVE_AVX2)
  return avx2::SquaredEuclidean(a, b, n);
#else
  return scalar::SquaredEuclidean(a, b, n);
#endif
}

float SquaredEuclideanEarlyAbandon(const float* a, const float* b,
                                   std::size_t n, float bound) {
#if defined(SOFA_COMPILE_AVX512)
  if (CpuSupportsAvx512()) {
    return avx512::SquaredEuclideanEarlyAbandon(a, b, n, bound);
  }
#endif
#if defined(SOFA_HAVE_AVX2)
  return avx2::SquaredEuclideanEarlyAbandon(a, b, n, bound);
#else
  return scalar::SquaredEuclideanEarlyAbandon(a, b, n, bound);
#endif
}

float DotProduct(const float* a, const float* b, std::size_t n) {
#if defined(SOFA_COMPILE_AVX512)
  if (CpuSupportsAvx512()) {
    return avx512::DotProduct(a, b, n);
  }
#endif
#if defined(SOFA_HAVE_AVX2)
  return avx2::DotProduct(a, b, n);
#else
  return scalar::DotProduct(a, b, n);
#endif
}

float SquaredNorm(const float* a, std::size_t n) {
#if defined(SOFA_COMPILE_AVX512)
  if (CpuSupportsAvx512()) {
    return avx512::SquaredNorm(a, n);
  }
#endif
#if defined(SOFA_HAVE_AVX2)
  return avx2::SquaredNorm(a, n);
#else
  return scalar::SquaredNorm(a, n);
#endif
}

}  // namespace sofa
