// Dataset file I/O.
//
// Supports the vector-benchmark formats the paper's datasets ship in —
// `.fvecs` (SIFT/Deep1b: per vector an int32 dimension then float32
// values) and `.bvecs` (BigANN/SIFT1b: int32 dimension then uint8 values)
// — plus headerless row-major float32 ("raw", the format seismic archives
// are typically exported to).
//
// All readers validate structure and return std::nullopt on malformed
// input; they never abort on bad files.

#ifndef SOFA_CORE_IO_H_
#define SOFA_CORE_IO_H_

#include <cstddef>
#include <limits>
#include <optional>
#include <string>

#include "core/dataset.h"

namespace sofa {
namespace io {

/// Writes `.fvecs`: [int32 dim | dim × float32] per series.
bool WriteFvecs(const Dataset& data, const std::string& path);

/// Reads at most `max_count` vectors from an `.fvecs` file. All vectors
/// must share one dimension.
std::optional<Dataset> ReadFvecs(
    const std::string& path,
    std::size_t max_count = std::numeric_limits<std::size_t>::max());

/// Writes `.bvecs`: [int32 dim | dim × uint8]; values are clamped to
/// [0, 255] and rounded (lossy — intended for descriptor-style data).
bool WriteBvecs(const Dataset& data, const std::string& path);

/// Reads at most `max_count` vectors from a `.bvecs` file.
std::optional<Dataset> ReadBvecs(
    const std::string& path,
    std::size_t max_count = std::numeric_limits<std::size_t>::max());

/// Writes headerless row-major float32.
bool WriteRawF32(const Dataset& data, const std::string& path);

/// Reads headerless row-major float32 of known series length; the file
/// size must be a multiple of length·4 bytes.
std::optional<Dataset> ReadRawF32(
    const std::string& path, std::size_t length,
    std::size_t max_count = std::numeric_limits<std::size_t>::max());

}  // namespace io
}  // namespace sofa

#endif  // SOFA_CORE_IO_H_
