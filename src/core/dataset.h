// The in-memory data series collection.
//
// A Dataset is a dense, row-major, 64-byte-aligned N×n float matrix: N data
// series of identical length n. It is the substrate every index and scan in
// this repository operates on (the paper's setting: in-memory collections,
// whole-series matching).

#ifndef SOFA_CORE_DATASET_H_
#define SOFA_CORE_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/aligned.h"

namespace sofa {

class ThreadPool;

/// Dense in-memory collection of equal-length data series.
class Dataset {
 public:
  /// Creates an empty dataset of series length `length`.
  explicit Dataset(std::size_t length);

  /// Creates a dataset with `count` zero-initialized series.
  Dataset(std::size_t count, std::size_t length);

  /// Number of series.
  std::size_t size() const { return count_; }

  /// Length (dimensionality) of each series.
  std::size_t length() const { return length_; }

  bool empty() const { return count_ == 0; }

  /// Read-only pointer to series `i`.
  const float* row(std::size_t i) const {
    SOFA_DCHECK(i < count_);
    return values_.data() + i * length_;
  }

  /// Mutable pointer to series `i`.
  float* mutable_row(std::size_t i) {
    SOFA_DCHECK(i < count_);
    return values_.data() + i * length_;
  }

  /// Raw contiguous storage (count() * length() floats).
  const float* data() const { return values_.data(); }
  float* mutable_data() { return values_.data(); }

  /// Appends a copy of `values` (length() floats).
  void Append(const float* values);

  /// Grows/shrinks to `count` series; new series are zero.
  void Resize(std::size_t count);

  /// Z-normalizes every series in place; parallel if a pool is given.
  void ZNormalizeAll(ThreadPool* pool = nullptr);

  /// Bytes of series payload held.
  std::size_t MemoryBytes() const { return count_ * length_ * sizeof(float); }

 private:
  std::size_t length_;
  std::size_t count_ = 0;
  AlignedVector<float> values_;
};

/// A dataset paired with its held-out query series (the benchmark unit:
/// Table I rows are one LabeledDataset each).
struct LabeledDataset {
  std::string name;
  Dataset data;
  Dataset queries;
};

}  // namespace sofa

#endif  // SOFA_CORE_DATASET_H_
