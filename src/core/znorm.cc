#include "core/znorm.h"

#include <cmath>

#include "util/check.h"

namespace sofa {

MeanStd ComputeMeanStd(const float* values, std::size_t n) {
  SOFA_DCHECK(n > 0);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += values[i];
    sum_sq += static_cast<double>(values[i]) * values[i];
  }
  const double mean = sum / static_cast<double>(n);
  const double variance =
      std::fmax(0.0, sum_sq / static_cast<double>(n) - mean * mean);
  return MeanStd{static_cast<float>(mean),
                 static_cast<float>(std::sqrt(variance))};
}

void ZNormalize(float* values, std::size_t n, float epsilon) {
  const MeanStd ms = ComputeMeanStd(values, n);
  if (ms.std < epsilon) {
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = 0.0f;
    }
    return;
  }
  const float inv_std = 1.0f / ms.std;
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = (values[i] - ms.mean) * inv_std;
  }
}

void ZNormalizeCopy(const float* in, float* out, std::size_t n,
                    float epsilon) {
  const MeanStd ms = ComputeMeanStd(in, n);
  if (ms.std < epsilon) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = 0.0f;
    }
    return;
  }
  const float inv_std = 1.0f / ms.std;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (in[i] - ms.mean) * inv_std;
  }
}

}  // namespace sofa
