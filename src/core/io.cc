#include "core/io.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace sofa {
namespace io {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr OpenRead(const std::string& path) {
  return FilePtr(std::fopen(path.c_str(), "rb"));
}

FilePtr OpenWrite(const std::string& path) {
  return FilePtr(std::fopen(path.c_str(), "wb"));
}

}  // namespace

bool WriteFvecs(const Dataset& data, const std::string& path) {
  FilePtr file = OpenWrite(path);
  if (file == nullptr) {
    return false;
  }
  const std::int32_t dim = static_cast<std::int32_t>(data.length());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (std::fwrite(&dim, sizeof(dim), 1, file.get()) != 1 ||
        std::fwrite(data.row(i), sizeof(float), data.length(), file.get()) !=
            data.length()) {
      return false;
    }
  }
  return true;
}

std::optional<Dataset> ReadFvecs(const std::string& path,
                                 std::size_t max_count) {
  FilePtr file = OpenRead(path);
  if (file == nullptr) {
    return std::nullopt;
  }
  std::optional<Dataset> dataset;
  std::vector<float> row;
  while (dataset == std::nullopt || dataset->size() < max_count) {
    std::int32_t dim = 0;
    const std::size_t got = std::fread(&dim, sizeof(dim), 1, file.get());
    if (got == 0) {
      break;  // clean EOF
    }
    if (dim <= 0) {
      return std::nullopt;
    }
    if (dataset == std::nullopt) {
      dataset.emplace(static_cast<std::size_t>(dim));
      row.resize(static_cast<std::size_t>(dim));
    } else if (static_cast<std::size_t>(dim) != dataset->length()) {
      return std::nullopt;  // inconsistent dimensionality
    }
    if (std::fread(row.data(), sizeof(float), row.size(), file.get()) !=
        row.size()) {
      return std::nullopt;  // truncated vector
    }
    dataset->Append(row.data());
  }
  return dataset;
}

bool WriteBvecs(const Dataset& data, const std::string& path) {
  FilePtr file = OpenWrite(path);
  if (file == nullptr) {
    return false;
  }
  const std::int32_t dim = static_cast<std::int32_t>(data.length());
  std::vector<std::uint8_t> row(data.length());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float* values = data.row(i);
    for (std::size_t t = 0; t < data.length(); ++t) {
      row[t] = static_cast<std::uint8_t>(
          std::clamp(std::lround(values[t]), 0L, 255L));
    }
    if (std::fwrite(&dim, sizeof(dim), 1, file.get()) != 1 ||
        std::fwrite(row.data(), 1, row.size(), file.get()) != row.size()) {
      return false;
    }
  }
  return true;
}

std::optional<Dataset> ReadBvecs(const std::string& path,
                                 std::size_t max_count) {
  FilePtr file = OpenRead(path);
  if (file == nullptr) {
    return std::nullopt;
  }
  std::optional<Dataset> dataset;
  std::vector<std::uint8_t> bytes;
  std::vector<float> row;
  while (dataset == std::nullopt || dataset->size() < max_count) {
    std::int32_t dim = 0;
    const std::size_t got = std::fread(&dim, sizeof(dim), 1, file.get());
    if (got == 0) {
      break;
    }
    if (dim <= 0) {
      return std::nullopt;
    }
    if (dataset == std::nullopt) {
      dataset.emplace(static_cast<std::size_t>(dim));
      bytes.resize(static_cast<std::size_t>(dim));
      row.resize(static_cast<std::size_t>(dim));
    } else if (static_cast<std::size_t>(dim) != dataset->length()) {
      return std::nullopt;
    }
    if (std::fread(bytes.data(), 1, bytes.size(), file.get()) !=
        bytes.size()) {
      return std::nullopt;
    }
    for (std::size_t t = 0; t < bytes.size(); ++t) {
      row[t] = static_cast<float>(bytes[t]);
    }
    dataset->Append(row.data());
  }
  return dataset;
}

bool WriteRawF32(const Dataset& data, const std::string& path) {
  FilePtr file = OpenWrite(path);
  if (file == nullptr) {
    return false;
  }
  const std::size_t total = data.size() * data.length();
  return std::fwrite(data.data(), sizeof(float), total, file.get()) == total;
}

std::optional<Dataset> ReadRawF32(const std::string& path,
                                  std::size_t length,
                                  std::size_t max_count) {
  if (length == 0) {
    return std::nullopt;
  }
  FilePtr file = OpenRead(path);
  if (file == nullptr) {
    return std::nullopt;
  }
  Dataset dataset(length);
  std::vector<float> row(length);
  while (dataset.size() < max_count) {
    const std::size_t got =
        std::fread(row.data(), sizeof(float), length, file.get());
    if (got == 0) {
      break;
    }
    if (got != length) {
      return std::nullopt;  // trailing partial series
    }
    dataset.Append(row.data());
  }
  return dataset;
}

}  // namespace io
}  // namespace sofa
