// AVX2/FMA implementations of the Euclidean distance kernels.
//
// 8-lane single-precision arithmetic with two parallel accumulators to hide
// FMA latency; the early-abandoning variant checks the running sum once per
// 16-element block, mirroring the chunked early-abandon scheme of the
// paper's Section IV-H.

#include "core/distance.h"

#if defined(SOFA_HAVE_AVX2)

#include <immintrin.h>

namespace sofa {
namespace avx2 {
namespace {

// Horizontal sum of a 256-bit float vector.
inline float HorizontalSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_hadd_ps(sum, sum);
  sum = _mm_hadd_ps(sum, sum);
  return _mm_cvtss_f32(sum);
}

}  // namespace

float SquaredEuclidean(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float sum = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float SquaredEuclideanEarlyAbandon(const float* a, const float* b,
                                   std::size_t n, float bound) {
  float sum = 0.0f;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256 acc = _mm256_setzero_ps();
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc = _mm256_fmadd_ps(d0, d0, acc);
    acc = _mm256_fmadd_ps(d1, d1, acc);
    sum += HorizontalSum(acc);
    if (sum > bound) {
      return sum;
    }
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float DotProduct(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float sum = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

float SquaredNorm(const float* a, std::size_t n) {
  return DotProduct(a, a, n);
}

}  // namespace avx2
}  // namespace sofa

#endif  // SOFA_HAVE_AVX2
