#include "core/dataset.h"

#include <cstring>

#include "core/znorm.h"
#include "util/thread_pool.h"

namespace sofa {

Dataset::Dataset(std::size_t length) : length_(length) {
  SOFA_CHECK(length_ > 0);
}

Dataset::Dataset(std::size_t count, std::size_t length) : Dataset(length) {
  Resize(count);
}

void Dataset::Append(const float* values) {
  const std::size_t offset = count_ * length_;
  values_.resize(offset + length_);
  std::memcpy(values_.data() + offset, values, length_ * sizeof(float));
  ++count_;
}

void Dataset::Resize(std::size_t count) {
  values_.resize(count * length_);
  count_ = count;
}

void Dataset::ZNormalizeAll(ThreadPool* pool) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < count_; ++i) {
      ZNormalize(mutable_row(i), length_);
    }
    return;
  }
  ParallelFor(pool, count_,
              [this](std::size_t begin, std::size_t end, std::size_t) {
                for (std::size_t i = begin; i < end; ++i) {
                  ZNormalize(mutable_row(i), length_);
                }
              });
}

}  // namespace sofa
