// Z-normalization of data series.
//
// All similarity search in this repository (like the paper and all prior
// iSAX-family work) operates on z-normalized series: each series is shifted
// to mean 0 and scaled to standard deviation 1 once at ingestion, after
// which the plain Euclidean distance equals the z-normalized Euclidean
// distance of the original series.

#ifndef SOFA_CORE_ZNORM_H_
#define SOFA_CORE_ZNORM_H_

#include <cstddef>

namespace sofa {

/// Mean and (population) standard deviation of a series.
struct MeanStd {
  float mean = 0.0f;
  float std = 0.0f;
};

/// Computes mean and population standard deviation in one pass
/// (double accumulation for stability).
MeanStd ComputeMeanStd(const float* values, std::size_t n);

/// In-place z-normalization. A (near-)constant series — std below `epsilon`
/// — becomes all zeros, the convention used by the UCR suite.
void ZNormalize(float* values, std::size_t n, float epsilon = 1e-8f);

/// Out-of-place z-normalization; `out` may not alias `in`.
void ZNormalizeCopy(const float* in, float* out, std::size_t n,
                    float epsilon = 1e-8f);

}  // namespace sofa

#endif  // SOFA_CORE_ZNORM_H_
