// AVX-512 implementations of the Euclidean distance kernels (16 float
// lanes; the paper's "up to 512 bits … speedups of up to 16 times").
//
// Compiled with per-file -mavx512* flags and reached only through the
// runtime CPU-feature dispatch in distance.cc, so the library stays safe
// on CPUs without AVX-512.

#include "core/distance.h"

#if defined(SOFA_COMPILE_AVX512)

#include <immintrin.h>

namespace sofa {
namespace avx512 {

float SquaredEuclidean(const float* a, const float* b, std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 16),
                                    _mm512_loadu_ps(b + i + 16));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 16 <= n; i += 16) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  if (i < n) {
    const __mmask16 tail =
        static_cast<__mmask16>((1u << (n - i)) - 1u);
    const __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(tail, a + i),
                                   _mm512_maskz_loadu_ps(tail, b + i));
    acc1 = _mm512_fmadd_ps(d, d, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float SquaredEuclideanEarlyAbandon(const float* a, const float* b,
                                   std::size_t n, float bound) {
  float sum = 0.0f;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    sum += _mm512_reduce_add_ps(_mm512_mul_ps(d, d));
    if (sum > bound) {
      return sum;
    }
  }
  if (i < n) {
    const __mmask16 tail =
        static_cast<__mmask16>((1u << (n - i)) - 1u);
    const __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(tail, a + i),
                                   _mm512_maskz_loadu_ps(tail, b + i));
    sum += _mm512_reduce_add_ps(_mm512_mul_ps(d, d));
  }
  return sum;
}

float DotProduct(const float* a, const float* b, std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  if (i < n) {
    const __mmask16 tail =
        static_cast<__mmask16>((1u << (n - i)) - 1u);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(tail, a + i),
                           _mm512_maskz_loadu_ps(tail, b + i), acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float SquaredNorm(const float* a, std::size_t n) {
  return DotProduct(a, a, n);
}

}  // namespace avx512
}  // namespace sofa

#endif  // SOFA_COMPILE_AVX512
