// Euclidean distance kernels.
//
// The hot distance paths of every system in this repository funnel through
// these functions: the GEMINI engines call SquaredEuclideanEarlyAbandon
// against the best-so-far, the UCR Suite-P scan uses the same kernel per
// thread, and the flat index uses DotProduct/SquaredNorm for its blocked
// ‖x‖²+‖y‖²−2x·y formulation.
//
// Both a portable scalar implementation and AVX2/FMA kernels are provided;
// the unqualified entry points dispatch to the best compiled-in variant.
// The scalar and SIMD variants are kept independently callable so tests can
// assert bit-level agreement of pruning decisions and benches can measure
// the SIMD ablation of Section IV-H.

#ifndef SOFA_CORE_DISTANCE_H_
#define SOFA_CORE_DISTANCE_H_

#include <cstddef>

namespace sofa {

namespace scalar {

/// Sum of squared differences over n floats.
float SquaredEuclidean(const float* a, const float* b, std::size_t n);

/// Early-abandoning squared Euclidean distance: once the partial sum
/// exceeds `bound`, returns the partial sum immediately (which is then
/// > bound, signalling "abandoned"). With bound = +inf it computes the
/// exact distance.
float SquaredEuclideanEarlyAbandon(const float* a, const float* b,
                                   std::size_t n, float bound);

/// Inner product of two length-n vectors.
float DotProduct(const float* a, const float* b, std::size_t n);

/// Squared L2 norm of a length-n vector.
float SquaredNorm(const float* a, std::size_t n);

}  // namespace scalar

#if defined(SOFA_HAVE_AVX2)
namespace avx2 {

float SquaredEuclidean(const float* a, const float* b, std::size_t n);
float SquaredEuclideanEarlyAbandon(const float* a, const float* b,
                                   std::size_t n, float bound);
float DotProduct(const float* a, const float* b, std::size_t n);
float SquaredNorm(const float* a, std::size_t n);

}  // namespace avx2
#endif  // SOFA_HAVE_AVX2

#if defined(SOFA_COMPILE_AVX512)
// 16-lane kernels; compiled separately with -mavx512* and only invoked
// after a runtime CPU check (CpuSupportsAvx512).
namespace avx512 {

float SquaredEuclidean(const float* a, const float* b, std::size_t n);
float SquaredEuclideanEarlyAbandon(const float* a, const float* b,
                                   std::size_t n, float bound);
float DotProduct(const float* a, const float* b, std::size_t n);
float SquaredNorm(const float* a, std::size_t n);

}  // namespace avx512
#endif  // SOFA_COMPILE_AVX512

/// True when the AVX-512 kernels are compiled in *and* this CPU supports
/// them; the unqualified entry points then use them.
bool CpuSupportsAvx512();

/// Name of the kernel tier the unqualified entry points dispatch to on
/// this machine: "avx512", "avx2" or "scalar". Stable strings — bench
/// stats dumps embed them so a perf comparison can refuse to diff runs
/// from different ISA tiers.
const char* DispatchLevelName();

/// Best-available squared Euclidean distance.
float SquaredEuclidean(const float* a, const float* b, std::size_t n);

/// Best-available early-abandoning squared Euclidean distance.
float SquaredEuclideanEarlyAbandon(const float* a, const float* b,
                                   std::size_t n, float bound);

/// Best-available inner product.
float DotProduct(const float* a, const float* b, std::size_t n);

/// Best-available squared norm.
float SquaredNorm(const float* a, std::size_t n);

}  // namespace sofa

#endif  // SOFA_CORE_DISTANCE_H_
