// The result unit of every similarity-search engine in this repository.

#ifndef SOFA_CORE_NEIGHBOR_H_
#define SOFA_CORE_NEIGHBOR_H_

#include <cstdint>

namespace sofa {

/// One answer of a similarity query.
struct Neighbor {
  std::uint32_t id = 0;
  float distance = 0.0f;  // Euclidean (not squared)

  bool operator==(const Neighbor& other) const {
    return id == other.id && distance == other.distance;
  }
};

}  // namespace sofa

#endif  // SOFA_CORE_NEIGHBOR_H_
