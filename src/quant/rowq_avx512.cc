// AVX-512 rowq lower-bound kernel. One 16-lane accumulator is the exact
// vector image of the scalar kernel's 16 lanes; the reduction first adds
// the upper 256-bit half onto the lower (lanes j += j+8) and then runs
// the identical 128-bit tree as the AVX2 kernel, so all three ISAs
// return the same bits. No FMA; compiled with -ffp-contract=off and
// per-file -mavx512* flags, reached only via the dispatch in rowq.cc.

#include "quant/rowq.h"

#if defined(SOFA_COMPILE_AVX512)

#include <immintrin.h>

namespace sofa {
namespace quant {
namespace avx512 {
namespace {

// Box-distance term of one 16-dimension block starting at `i`.
inline __m512 BlockTerm(const float* query, const float* mins,
                        const float* deltas, const std::uint8_t* code,
                        std::size_t i) {
  const __m128i codes16 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + i));
  const __m512 c = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(codes16));
  const __m512 mn = _mm512_loadu_ps(mins + i);
  const __m512 dl = _mm512_loadu_ps(deltas + i);
  const __m512 q = _mm512_loadu_ps(query + i);
  const __m512 lo = _mm512_add_ps(mn, _mm512_mul_ps(c, dl));
  const __m512 hi = _mm512_add_ps(lo, dl);
  const __m512 a = _mm512_sub_ps(lo, q);
  const __m512 b = _mm512_sub_ps(q, hi);
  __m512 m = _mm512_max_ps(a, b);
  m = _mm512_max_ps(m, _mm512_setzero_ps());
  return _mm512_mul_ps(m, m);
}

// The shared pairwise reduction tree — upper 256-bit half onto the
// lower (j+8), then the identical 128-bit tail as the AVX2 kernel.
inline float Reduce(__m512 acc) {
  const __m256 half = _mm256_add_ps(_mm512_castps512_ps256(acc),
                                    _mm512_extractf32x8_ps(acc, 1));  // j+8
  const __m128 s4 = _mm_add_ps(_mm256_castps256_ps128(half),
                               _mm256_extractf128_ps(half, 1));  // j+4
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));  // 0+2, 1+3
  const __m128 s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x1));
  return _mm_cvtss_f32(s1);
}

}  // namespace

float RowqLowerBoundSquared(const float* query, const float* mins,
                            const float* deltas, const std::uint8_t* code,
                            std::size_t padded_length) {
  __m512 acc = _mm512_setzero_ps();
  for (std::size_t i = 0; i < padded_length; i += kRowqLanes) {
    acc = _mm512_add_ps(acc, BlockTerm(query, mins, deltas, code, i));
  }
  return Reduce(acc);
}

float RowqLowerBoundSquaredEarlyAbandon(const float* query, const float* mins,
                                        const float* deltas,
                                        const std::uint8_t* code,
                                        std::size_t padded_length,
                                        float abandon) {
  __m512 acc = _mm512_setzero_ps();
  float partial = 0.0f;
  for (std::size_t i = 0; i < padded_length; i += kRowqLanes) {
    acc = _mm512_add_ps(acc, BlockTerm(query, mins, deltas, code, i));
    // Per-block checkpoint, same tree and bits as the other ISAs; the
    // accumulator is untouched, so a full scan matches
    // RowqLowerBoundSquared exactly.
    partial = Reduce(acc);
    if (partial > abandon) {
      return partial;
    }
  }
  return partial;
}

}  // namespace avx512
}  // namespace quant
}  // namespace sofa

#endif  // SOFA_COMPILE_AVX512
