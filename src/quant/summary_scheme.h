// The summarization abstraction shared by the index, the LBD kernels and
// the TLB ablations.
//
// A summarization maps a (z-normalized) series of length n to l summary
// values ("projection"), quantizes each value into an 8-bit symbol against
// a per-dimension BreakpointTable ("symbolization"), and contributes a
// per-dimension weight to the lower-bound distance:
//
//   LBD²(query, word) = Σ_i weight_i · mindist_i(query_value_i, interval_i)²
//
// iSAX: projection = PAA, shared N(0,1) table, weight_i = segment length
//       (n/l for divisible lengths) — the classic mindist.
// SFA:  projection = selected DFT values, learned per-value tables,
//       weight_i = 2 (1 for DC/Nyquist values) — paper Eq. 1/2.
//
// Swapping the scheme turns the same tree index into MESSI (iSAX) or SOFA
// (SFA), which is precisely the paper's design.

#ifndef SOFA_QUANT_SUMMARY_SCHEME_H_
#define SOFA_QUANT_SUMMARY_SCHEME_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "quant/breakpoint_table.h"
#include "util/aligned.h"

namespace sofa {
namespace quant {

/// Interface of a table-based symbolic summarization.
class SummaryScheme {
 public:
  /// Opaque per-thread scratch for Project; subclasses extend it.
  class Scratch {
   public:
    virtual ~Scratch() = default;
  };

  virtual ~SummaryScheme() = default;

  /// Scheme name for reports ("iSAX", "SFA EW +VAR", …).
  virtual std::string name() const = 0;

  /// Length of the series this scheme was built for.
  virtual std::size_t series_length() const = 0;

  /// Creates a scratch object; one per worker thread.
  virtual std::unique_ptr<Scratch> NewScratch() const {
    return std::make_unique<Scratch>();
  }

  /// Projects a z-normalized series of series_length() floats into
  /// word_length() summary values.
  virtual void Project(const float* series, float* values_out,
                       Scratch* scratch) const = 0;

  /// Convenience: Project with a temporary scratch (allocates).
  void Project(const float* series, float* values_out) const {
    auto scratch = NewScratch();
    Project(series, values_out, scratch.get());
  }

  /// Projects and quantizes into word_length() 8-bit symbols.
  void Symbolize(const float* series, std::uint8_t* word,
                 Scratch* scratch, float* values_scratch) const;

  /// Convenience Symbolize with temporaries (allocates).
  void Symbolize(const float* series, std::uint8_t* word) const;

  /// Number of summary dimensions l.
  std::size_t word_length() const { return table_.word_length(); }

  /// Alphabet size (power of two ≤ 256).
  std::size_t alphabet() const { return table_.alphabet(); }

  /// Bits per symbol.
  std::uint32_t bits() const { return table_.bits(); }

  /// Per-dimension quantization intervals.
  const BreakpointTable& table() const { return table_; }

  /// Per-dimension LBD weights (word_length() entries).
  const float* weights() const { return weights_.data(); }

 protected:
  SummaryScheme(std::size_t word_length, std::size_t alphabet)
      : table_(word_length, alphabet) {
    weights_.assign(word_length, 1.0f);
  }

  BreakpointTable table_;
  AlignedVector<float> weights_;
};

}  // namespace quant
}  // namespace sofa

#endif  // SOFA_QUANT_SUMMARY_SCHEME_H_
