// AVX2 implementation of the SIMD lower-bound kernel (paper Section IV-H,
// Algorithm 3 and Figure 6).
//
// Per 8-dimension chunk:
//   1. "Gather bound": the symbols of the candidate word index two flat
//      [dim][symbol] tables of interval bounds (one vgatherdps each).
//   2. "Caldist": distances to the LOWER and UPPER breakpoints.
//   3. "Genmask": comparison masks for the three branches (query below the
//      interval / above / inside). The ZERO branch needs no explicit mask —
//      masking the two non-zero branches and OR-ing them leaves in-interval
//      lanes at 0, exactly Eq. 2.
//   4. Weighted FMA accumulation, horizontal sum per chunk, early abandon
//      against the best-so-far.

#include "quant/lbd.h"

#if defined(SOFA_HAVE_AVX2)

#include <immintrin.h>

namespace sofa {
namespace quant {
namespace avx2 {
namespace {

inline float HorizontalSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_hadd_ps(sum, sum);
  sum = _mm_hadd_ps(sum, sum);
  return _mm_cvtss_f32(sum);
}

// Weighted squared mindist of one 8-dim chunk starting at `dim`.
inline __m256 ChunkTerm(const float* lower, const float* upper,
                        const float* weights, const float* query_values,
                        const std::uint8_t* word, std::size_t dim,
                        std::size_t alphabet) {
  // Indices: (dim+i)*alphabet + word[dim+i].
  const __m128i symbols8 = _mm_loadl_epi64(
      reinterpret_cast<const __m128i*>(word + dim));
  const __m256i symbols = _mm256_cvtepu8_epi32(symbols8);
  const __m256i lane_base = _mm256_setr_epi32(
      0, static_cast<int>(alphabet), static_cast<int>(2 * alphabet),
      static_cast<int>(3 * alphabet), static_cast<int>(4 * alphabet),
      static_cast<int>(5 * alphabet), static_cast<int>(6 * alphabet),
      static_cast<int>(7 * alphabet));
  const __m256i base =
      _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(dim * alphabet)),
                       lane_base);
  const __m256i idx = _mm256_add_epi32(base, symbols);

  const __m256 q = _mm256_loadu_ps(query_values + dim);
  const __m256 lo = _mm256_i32gather_ps(lower, idx, 4);
  const __m256 hi = _mm256_i32gather_ps(upper, idx, 4);

  // Caldist + Genmask + masked combine (Algorithm 3 lines 6-8).
  const __m256 dist_lower = _mm256_sub_ps(lo, q);   // >0 iff q below interval
  const __m256 dist_upper = _mm256_sub_ps(q, hi);   // >0 iff q above interval
  const __m256 mask_lower = _mm256_cmp_ps(q, lo, _CMP_LT_OQ);
  const __m256 mask_upper = _mm256_cmp_ps(q, hi, _CMP_GT_OQ);
  const __m256 d = _mm256_or_ps(_mm256_and_ps(mask_lower, dist_lower),
                                _mm256_and_ps(mask_upper, dist_upper));

  const __m256 w = _mm256_loadu_ps(weights + dim);
  return _mm256_mul_ps(w, _mm256_mul_ps(d, d));
}

// Scalar handling of the last (l mod 8) dimensions.
inline float ScalarTail(const BreakpointTable& table, const float* weights,
                        const float* query_values, const std::uint8_t* word,
                        std::size_t dim) {
  const std::size_t l = table.word_length();
  const std::size_t alphabet = table.alphabet();
  const float* lower = table.lower_bounds();
  const float* upper = table.upper_bounds();
  float sum = 0.0f;
  for (; dim < l; ++dim) {
    const std::size_t idx = dim * alphabet + word[dim];
    const float q = query_values[dim];
    float d = 0.0f;
    if (q < lower[idx]) {
      d = lower[idx] - q;
    } else if (q > upper[idx]) {
      d = q - upper[idx];
    }
    sum += weights[dim] * d * d;
  }
  return sum;
}

}  // namespace

float LbdSquared(const BreakpointTable& table, const float* weights,
                 const float* query_values, const std::uint8_t* word) {
  const std::size_t l = table.word_length();
  const std::size_t alphabet = table.alphabet();
  const float* lower = table.lower_bounds();
  const float* upper = table.upper_bounds();
  __m256 acc = _mm256_setzero_ps();
  std::size_t dim = 0;
  for (; dim + 8 <= l; dim += 8) {
    acc = _mm256_add_ps(
        acc, ChunkTerm(lower, upper, weights, query_values, word, dim,
                       alphabet));
  }
  return HorizontalSum(acc) +
         ScalarTail(table, weights, query_values, word, dim);
}

float LbdSquaredEarlyAbandon(const BreakpointTable& table,
                             const float* weights, const float* query_values,
                             const std::uint8_t* word, float bound) {
  const std::size_t l = table.word_length();
  const std::size_t alphabet = table.alphabet();
  const float* lower = table.lower_bounds();
  const float* upper = table.upper_bounds();
  float sum = 0.0f;
  std::size_t dim = 0;
  for (; dim + 8 <= l; dim += 8) {
    sum += HorizontalSum(ChunkTerm(lower, upper, weights, query_values, word,
                                   dim, alphabet));
    if (sum > bound) {
      return sum;
    }
  }
  return sum + ScalarTail(table, weights, query_values, word, dim);
}

}  // namespace avx2
}  // namespace quant
}  // namespace sofa

#endif  // SOFA_HAVE_AVX2
