#include "quant/binning.h"

#include <algorithm>

#include "util/check.h"

namespace sofa {
namespace quant {

const char* BinningMethodName(BinningMethod method) {
  switch (method) {
    case BinningMethod::kEquiDepth:
      return "equi-depth";
    case BinningMethod::kEquiWidth:
      return "equi-width";
  }
  return "unknown";
}

std::vector<float> EquiDepthBreakpoints(std::vector<float> values,
                                        std::size_t alphabet) {
  SOFA_CHECK(alphabet >= 2);
  SOFA_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  std::vector<float> edges(alphabet - 1);
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 1; i < alphabet; ++i) {
    // Edge at the i/alphabet quantile (nearest-rank with interpolation).
    const double pos =
        static_cast<double>(i) / static_cast<double>(alphabet) * (n - 1.0);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    edges[i - 1] = static_cast<float>(values[lo] * (1.0 - frac) +
                                      values[hi] * frac);
  }
  return edges;
}

std::vector<float> EquiWidthBreakpoints(const std::vector<float>& values,
                                        std::size_t alphabet) {
  SOFA_CHECK(alphabet >= 2);
  SOFA_CHECK(!values.empty());
  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  const double lo = *min_it;
  const double width = (static_cast<double>(*max_it) - lo) /
                       static_cast<double>(alphabet);
  std::vector<float> edges(alphabet - 1);
  for (std::size_t i = 1; i < alphabet; ++i) {
    edges[i - 1] = static_cast<float>(lo + width * static_cast<double>(i));
  }
  return edges;
}

std::vector<float> LearnBreakpoints(std::vector<float> values,
                                    std::size_t alphabet,
                                    BinningMethod method) {
  if (method == BinningMethod::kEquiDepth) {
    return EquiDepthBreakpoints(std::move(values), alphabet);
  }
  return EquiWidthBreakpoints(values, alphabet);
}

std::uint8_t Quantize(float value, const float* edges, std::size_t alphabet) {
  const std::size_t count = alphabet - 1;
  // Branch-free-friendly binary search: first edge strictly greater than
  // value; its index is the bin.
  std::size_t lo = 0;
  std::size_t len = count;
  while (len > 0) {
    const std::size_t half = len / 2;
    if (edges[lo + half] <= value) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  return static_cast<std::uint8_t>(lo);
}

}  // namespace quant
}  // namespace sofa
