// Lower-bounding distance (LBD) kernels — the pruning workhorse of the
// GEMINI engines (paper Section IV-E3 / IV-H, Algorithm 3).
//
// All functions return the *squared* LBD:
//   LBD² = Σ_i weight_i · mindist(query_value_i, interval(word_i))²
// where mindist is Eq. 2: 0 inside the interval, distance to the nearer
// breakpoint outside. With iSAX inputs this is the classic mindist; with
// SFA inputs it is the SFA lower bound.
//
// Scalar and AVX2 variants are independently callable (tests assert
// equality; benches measure the Section IV-H ablation); unqualified
// functions dispatch to the best compiled-in kernel.

#ifndef SOFA_QUANT_LBD_H_
#define SOFA_QUANT_LBD_H_

#include <cstddef>
#include <cstdint>

#include "quant/breakpoint_table.h"

namespace sofa {
namespace quant {

namespace scalar {

/// Squared LBD between a query projection and a full-cardinality word.
float LbdSquared(const BreakpointTable& table, const float* weights,
                 const float* query_values, const std::uint8_t* word);

/// Early-abandoning variant: once the partial sum exceeds `bound` (checked
/// every 8 dimensions — the paper's SIMD chunk granularity), returns the
/// partial sum immediately.
float LbdSquaredEarlyAbandon(const BreakpointTable& table,
                             const float* weights, const float* query_values,
                             const std::uint8_t* word, float bound);

}  // namespace scalar

#if defined(SOFA_HAVE_AVX2)
namespace avx2 {

/// SIMD LBD (Algorithm 3): per-8-lane gather of interval bounds, branch-free
/// UPPER/LOWER/ZERO masking, weighted FMA accumulation.
float LbdSquared(const BreakpointTable& table, const float* weights,
                 const float* query_values, const std::uint8_t* word);

/// SIMD LBD with per-chunk early abandoning against `bound`.
float LbdSquaredEarlyAbandon(const BreakpointTable& table,
                             const float* weights, const float* query_values,
                             const std::uint8_t* word, float bound);

}  // namespace avx2
#endif  // SOFA_HAVE_AVX2

#if defined(SOFA_COMPILE_AVX512)
namespace avx512 {

/// 16-lane variant: one iteration covers the default word length l = 16.
/// Compiled separately; used only when CpuSupportsAvx512() holds.
float LbdSquared(const BreakpointTable& table, const float* weights,
                 const float* query_values, const std::uint8_t* word);

float LbdSquaredEarlyAbandon(const BreakpointTable& table,
                             const float* weights, const float* query_values,
                             const std::uint8_t* word, float bound);

}  // namespace avx512
#endif  // SOFA_COMPILE_AVX512

/// Best-available squared LBD.
float LbdSquared(const BreakpointTable& table, const float* weights,
                 const float* query_values, const std::uint8_t* word);

/// Best-available early-abandoning squared LBD.
float LbdSquaredEarlyAbandon(const BreakpointTable& table,
                             const float* weights, const float* query_values,
                             const std::uint8_t* word, float bound);

/// Squared LBD between a query projection and a *node* summary: per
/// dimension a symbol prefix at `card_bits[dim]` bits; dimensions with
/// cardinality 0 are unconstrained and contribute nothing. Scalar only —
/// node evaluations are rare compared to per-series LBDs.
float NodeLbdSquared(const BreakpointTable& table, const float* weights,
                     const float* query_values, const std::uint8_t* prefixes,
                     const std::uint8_t* card_bits);

}  // namespace quant
}  // namespace sofa

#endif  // SOFA_QUANT_LBD_H_
