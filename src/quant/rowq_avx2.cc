// AVX2 rowq lower-bound kernel. Bit-identical to the scalar kernel: two
// 8-lane accumulators model scalar lanes 0-7 and 8-15, every arithmetic
// step is the same singly-rounded operation in the same order (mul, add,
// sub, max — never FMA; this TU is compiled with -ffp-contract=off), and
// the final reduction is the same pairwise tree (lanes j+8, then j+4,
// then movehl for j+2, then shuffle for j+1 — NOT hadd, whose pairing
// differs from the scalar loop).

#include "quant/rowq.h"

#if defined(SOFA_HAVE_AVX2)

#include <immintrin.h>

namespace sofa {
namespace quant {
namespace avx2 {
namespace {

// Box-distance term of 8 dimensions starting at `d`.
inline __m256 ChunkTerm(const float* query, const float* mins,
                        const float* deltas, const std::uint8_t* code,
                        std::size_t d) {
  const __m128i codes8 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code + d));
  const __m256 c = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(codes8));
  const __m256 mn = _mm256_loadu_ps(mins + d);
  const __m256 dl = _mm256_loadu_ps(deltas + d);
  const __m256 q = _mm256_loadu_ps(query + d);
  const __m256 lo = _mm256_add_ps(mn, _mm256_mul_ps(c, dl));
  const __m256 hi = _mm256_add_ps(lo, dl);
  const __m256 a = _mm256_sub_ps(lo, q);
  const __m256 b = _mm256_sub_ps(q, hi);
  __m256 m = _mm256_max_ps(a, b);
  m = _mm256_max_ps(m, _mm256_setzero_ps());
  return _mm256_mul_ps(m, m);
}

// The final pairwise reduction tree (lanes j+8, j+4, movehl for j+2,
// shuffle for j+1) — also evaluated at every early-abandon checkpoint.
inline float Reduce(__m256 acc0, __m256 acc1) {
  const __m256 acc = _mm256_add_ps(acc0, acc1);  // lanes j += j+8
  const __m128 s4 = _mm_add_ps(_mm256_castps256_ps128(acc),
                               _mm256_extractf128_ps(acc, 1));  // j += j+4
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));  // 0+2, 1+3
  const __m128 s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x1));
  return _mm_cvtss_f32(s1);
}

}  // namespace

float RowqLowerBoundSquared(const float* query, const float* mins,
                            const float* deltas, const std::uint8_t* code,
                            std::size_t padded_length) {
  __m256 acc0 = _mm256_setzero_ps();  // scalar lanes 0-7
  __m256 acc1 = _mm256_setzero_ps();  // scalar lanes 8-15
  for (std::size_t i = 0; i < padded_length; i += kRowqLanes) {
    acc0 = _mm256_add_ps(acc0, ChunkTerm(query, mins, deltas, code, i));
    acc1 = _mm256_add_ps(acc1, ChunkTerm(query, mins, deltas, code, i + 8));
  }
  return Reduce(acc0, acc1);
}

float RowqLowerBoundSquaredEarlyAbandon(const float* query, const float* mins,
                                        const float* deltas,
                                        const std::uint8_t* code,
                                        std::size_t padded_length,
                                        float abandon) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  float partial = 0.0f;
  for (std::size_t i = 0; i < padded_length; i += kRowqLanes) {
    acc0 = _mm256_add_ps(acc0, ChunkTerm(query, mins, deltas, code, i));
    acc1 = _mm256_add_ps(acc1, ChunkTerm(query, mins, deltas, code, i + 8));
    // Checkpoint after every block: same tree, same bits as the scalar
    // kernel's checkpoint; the accumulators are untouched, so a full
    // scan returns exactly RowqLowerBoundSquared's value.
    partial = Reduce(acc0, acc1);
    if (partial > abandon) {
      return partial;
    }
  }
  return partial;
}

}  // namespace avx2
}  // namespace quant
}  // namespace sofa

#endif  // SOFA_HAVE_AVX2
