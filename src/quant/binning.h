// Learning quantization bins from empirical value distributions.
//
// SFA's MCB step learns, per selected Fourier value, a set of alphabet-many
// bins from the sample distribution — either equi-depth (equal mass) or
// equi-width (equal span). The paper's ablation (Section V-E) shows
// equi-width with variance-based feature selection gives the tightest lower
// bounds, so that is the SOFA default.
//
// Conventions: `alphabet` bins are delimited by alphabet−1 finite interior
// edges; the outermost bins extend to ±infinity so every real value has a
// symbol and the mindist of out-of-range values stays a valid lower bound.

#ifndef SOFA_QUANT_BINNING_H_
#define SOFA_QUANT_BINNING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sofa {
namespace quant {

/// How bin edges are derived from a sample of values.
enum class BinningMethod {
  kEquiDepth,  // edges at empirical quantiles (equal mass per bin)
  kEquiWidth,  // equally spaced edges across [min, max]
};

/// Human-readable method name ("equi-depth" / "equi-width").
const char* BinningMethodName(BinningMethod method);

/// Computes the alphabet−1 interior edges by equi-depth binning of the
/// sample (consumes/sorts the input). Edges are non-decreasing.
std::vector<float> EquiDepthBreakpoints(std::vector<float> values,
                                        std::size_t alphabet);

/// Computes the alphabet−1 interior edges by equi-width binning of the
/// sample range [min, max]. Degenerate samples (min == max) yield all-equal
/// edges, mapping every value to the first or last bin.
std::vector<float> EquiWidthBreakpoints(const std::vector<float>& values,
                                        std::size_t alphabet);

/// Dispatches on `method`.
std::vector<float> LearnBreakpoints(std::vector<float> values,
                                    std::size_t alphabet,
                                    BinningMethod method);

/// Maps a value to its bin: the number of interior edges ≤ value, i.e. bin
/// b covers [edges[b−1], edges[b]) with virtual edges ±inf at the ends.
std::uint8_t Quantize(float value, const float* edges, std::size_t alphabet);

}  // namespace quant
}  // namespace sofa

#endif  // SOFA_QUANT_BINNING_H_
