#include "quant/breakpoint_table.h"

#include <cmath>
#include <limits>

#include "quant/binning.h"
#include "util/check.h"

namespace sofa {
namespace quant {

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();
}  // namespace

BreakpointTable::BreakpointTable(std::size_t word_length,
                                 std::size_t alphabet)
    : word_length_(word_length), alphabet_(alphabet) {
  SOFA_CHECK(word_length_ > 0);
  SOFA_CHECK(alphabet_ >= 2 && alphabet_ <= 256);
  SOFA_CHECK((alphabet_ & (alphabet_ - 1)) == 0)
      << "alphabet must be a power of two for cardinality splits";
  bits_ = 0;
  while ((std::size_t{1} << bits_) < alphabet_) {
    ++bits_;
  }
  edges_.assign(word_length_ * (alphabet_ + 1), 0.0f);
  lower_.resize(word_length_ * alphabet_);
  upper_.resize(word_length_ * alphabet_);
  for (std::size_t dim = 0; dim < word_length_; ++dim) {
    edges_[dim * (alphabet_ + 1)] = -kInf;
    edges_[dim * (alphabet_ + 1) + alphabet_] = kInf;
  }
}

void BreakpointTable::SetDimension(std::size_t dim,
                                   const std::vector<float>& edges) {
  SOFA_CHECK(dim < word_length_);
  SOFA_CHECK_EQ(edges.size(), alphabet_ - 1);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    SOFA_CHECK(edges[i - 1] <= edges[i]) << "edges must be non-decreasing";
  }
  float* padded = edges_.data() + dim * (alphabet_ + 1);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    padded[i + 1] = edges[i];
  }
  float* lower = lower_.data() + dim * alphabet_;
  float* upper = upper_.data() + dim * alphabet_;
  for (std::size_t s = 0; s < alphabet_; ++s) {
    lower[s] = padded[s];
    upper[s] = padded[s + 1];
  }
}

std::uint8_t BreakpointTable::Quantize(std::size_t dim, float value) const {
  SOFA_DCHECK(dim < word_length_);
  const float* interior = edges_.data() + dim * (alphabet_ + 1) + 1;
  return quant::Quantize(value, interior, alphabet_);
}

float BreakpointTable::PrefixLower(std::size_t dim, std::uint32_t prefix,
                                   std::uint32_t card_bits) const {
  SOFA_DCHECK(dim < word_length_);
  SOFA_DCHECK(card_bits >= 1 && card_bits <= bits_);
  SOFA_DCHECK(prefix < (std::uint32_t{1} << card_bits));
  const std::uint32_t stride = std::uint32_t{1} << (bits_ - card_bits);
  return edges_[dim * (alphabet_ + 1) + prefix * stride];
}

float BreakpointTable::PrefixUpper(std::size_t dim, std::uint32_t prefix,
                                   std::uint32_t card_bits) const {
  SOFA_DCHECK(dim < word_length_);
  SOFA_DCHECK(card_bits >= 1 && card_bits <= bits_);
  SOFA_DCHECK(prefix < (std::uint32_t{1} << card_bits));
  const std::uint32_t stride = std::uint32_t{1} << (bits_ - card_bits);
  return edges_[dim * (alphabet_ + 1) + (prefix + 1) * stride];
}

float BreakpointTable::MinDistPrefix(std::size_t dim, std::uint32_t prefix,
                                     std::uint32_t card_bits,
                                     float value) const {
  const float lower = PrefixLower(dim, prefix, card_bits);
  if (value < lower) {
    return lower - value;
  }
  const float upper = PrefixUpper(dim, prefix, card_bits);
  if (value > upper) {
    return value - upper;
  }
  return 0.0f;
}

}  // namespace quant
}  // namespace sofa
