// Quantiles of the standard Normal distribution.
//
// iSAX derives its (fixed) breakpoints by equal-depth binning of N(0,1);
// classic implementations hard-code tables up to alphabet 256. We compute
// them for any alphabet size with Acklam's rational approximation of the
// inverse Normal CDF (|relative error| < 1.15e-9), refined by one Halley
// step against the exact CDF.

#ifndef SOFA_QUANT_NORMAL_QUANTILES_H_
#define SOFA_QUANT_NORMAL_QUANTILES_H_

#include <cstddef>
#include <vector>

namespace sofa {
namespace quant {

/// Inverse CDF (quantile function) of N(0,1) for p in (0, 1).
double InverseStdNormalCdf(double p);

/// The alphabet−1 interior breakpoints splitting N(0,1) into `alphabet`
/// equal-probability bins — the iSAX breakpoint table.
std::vector<float> NormalBreakpoints(std::size_t alphabet);

}  // namespace quant
}  // namespace sofa

#endif  // SOFA_QUANT_NORMAL_QUANTILES_H_
