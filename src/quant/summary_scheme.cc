#include "quant/summary_scheme.h"

#include <vector>

namespace sofa {
namespace quant {

void SummaryScheme::Symbolize(const float* series, std::uint8_t* word,
                              Scratch* scratch, float* values_scratch) const {
  Project(series, values_scratch, scratch);
  for (std::size_t dim = 0; dim < word_length(); ++dim) {
    word[dim] = table_.Quantize(dim, values_scratch[dim]);
  }
}

void SummaryScheme::Symbolize(const float* series, std::uint8_t* word) const {
  auto scratch = NewScratch();
  std::vector<float> values(word_length());
  Symbolize(series, word, scratch.get(), values.data());
}

}  // namespace quant
}  // namespace sofa
