// AVX-512 implementation of the SIMD lower-bound kernel: one 16-lane
// iteration covers the paper's default word length l = 16 entirely —
// gather both interval bounds, mask-select the UPPER/LOWER branches with
// native predicate masks, and reduce.
//
// Compiled with per-file -mavx512* flags; reached only via the runtime
// dispatch in lbd.cc.

#include "quant/lbd.h"

#if defined(SOFA_COMPILE_AVX512)

#include <immintrin.h>

namespace sofa {
namespace quant {
namespace avx512 {
namespace {

// Weighted squared mindist of one 16-dim chunk starting at `dim`.
inline __m512 ChunkTerm(const float* lower, const float* upper,
                        const float* weights, const float* query_values,
                        const std::uint8_t* word, std::size_t dim,
                        std::size_t alphabet) {
  const __m128i symbols16 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(word + dim));
  const __m512i symbols = _mm512_cvtepu8_epi32(symbols16);
  alignas(64) std::int32_t base_lanes[16];
  for (int lane = 0; lane < 16; ++lane) {
    base_lanes[lane] = static_cast<std::int32_t>((dim + lane) * alphabet);
  }
  const __m512i idx = _mm512_add_epi32(
      _mm512_load_si512(reinterpret_cast<const void*>(base_lanes)), symbols);

  const __m512 q = _mm512_loadu_ps(query_values + dim);
  const __m512 lo = _mm512_i32gather_ps(idx, lower, 4);
  const __m512 hi = _mm512_i32gather_ps(idx, upper, 4);

  const __mmask16 below = _mm512_cmp_ps_mask(q, lo, _CMP_LT_OQ);
  const __mmask16 above = _mm512_cmp_ps_mask(q, hi, _CMP_GT_OQ);
  __m512 d = _mm512_setzero_ps();
  d = _mm512_mask_mov_ps(d, below, _mm512_sub_ps(lo, q));
  d = _mm512_mask_mov_ps(d, above, _mm512_sub_ps(q, hi));

  const __m512 w = _mm512_loadu_ps(weights + dim);
  return _mm512_mul_ps(w, _mm512_mul_ps(d, d));
}

inline float ScalarTail(const BreakpointTable& table, const float* weights,
                        const float* query_values, const std::uint8_t* word,
                        std::size_t dim) {
  const std::size_t l = table.word_length();
  const std::size_t alphabet = table.alphabet();
  const float* lower = table.lower_bounds();
  const float* upper = table.upper_bounds();
  float sum = 0.0f;
  for (; dim < l; ++dim) {
    const std::size_t idx = dim * alphabet + word[dim];
    const float q = query_values[dim];
    float d = 0.0f;
    if (q < lower[idx]) {
      d = lower[idx] - q;
    } else if (q > upper[idx]) {
      d = q - upper[idx];
    }
    sum += weights[dim] * d * d;
  }
  return sum;
}

}  // namespace

float LbdSquared(const BreakpointTable& table, const float* weights,
                 const float* query_values, const std::uint8_t* word) {
  const std::size_t l = table.word_length();
  const std::size_t alphabet = table.alphabet();
  const float* lower = table.lower_bounds();
  const float* upper = table.upper_bounds();
  __m512 acc = _mm512_setzero_ps();
  std::size_t dim = 0;
  for (; dim + 16 <= l; dim += 16) {
    acc = _mm512_add_ps(acc, ChunkTerm(lower, upper, weights, query_values,
                                       word, dim, alphabet));
  }
  return _mm512_reduce_add_ps(acc) +
         ScalarTail(table, weights, query_values, word, dim);
}

float LbdSquaredEarlyAbandon(const BreakpointTable& table,
                             const float* weights, const float* query_values,
                             const std::uint8_t* word, float bound) {
  const std::size_t l = table.word_length();
  const std::size_t alphabet = table.alphabet();
  const float* lower = table.lower_bounds();
  const float* upper = table.upper_bounds();
  float sum = 0.0f;
  std::size_t dim = 0;
  for (; dim + 16 <= l; dim += 16) {
    sum += _mm512_reduce_add_ps(ChunkTerm(lower, upper, weights,
                                          query_values, word, dim,
                                          alphabet));
    if (sum > bound) {
      return sum;
    }
  }
  return sum + ScalarTail(table, weights, query_values, word, dim);
}

}  // namespace avx512
}  // namespace quant
}  // namespace sofa

#endif  // SOFA_COMPILE_AVX512
