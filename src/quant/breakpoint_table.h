// Per-dimension quantization intervals with hierarchical cardinality.
//
// Both summarizations in this repository quantize l summary values into
// 8-bit symbols against per-dimension breakpoint tables: iSAX uses one
// shared N(0,1) quantile table, SFA uses per-value learned (MCB) tables.
// A node of the tree index uses only the top `c` bits of a symbol
// ("cardinality c"); its interval is obtained by striding the full table —
// that is what lets the MESSI tree host any table-based summarization.
//
// Layout: per dimension we keep alphabet+1 padded edges
//   [-inf, e_1, …, e_{alphabet-1}, +inf]
// so symbol s owns [edge[s], edge[s+1]) and a prefix p at cardinality c owns
// [edge[p·2^(bits−c)], edge[(p+1)·2^(bits−c)]). Two flat arrays
// (lower/upper bound per [dim][symbol]) feed the SIMD gather kernel.

#ifndef SOFA_QUANT_BREAKPOINT_TABLE_H_
#define SOFA_QUANT_BREAKPOINT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned.h"

namespace sofa {
namespace quant {

/// Immutable after construction+SetDimension; thread-safe to read.
class BreakpointTable {
 public:
  /// Creates a table for `word_length` dimensions and a power-of-two
  /// alphabet (2 … 256).
  BreakpointTable(std::size_t word_length, std::size_t alphabet);

  /// Installs the alphabet−1 interior edges of dimension `dim`
  /// (non-decreasing).
  void SetDimension(std::size_t dim, const std::vector<float>& edges);

  std::size_t word_length() const { return word_length_; }
  std::size_t alphabet() const { return alphabet_; }

  /// Bits per symbol: log2(alphabet).
  std::uint32_t bits() const { return bits_; }

  /// Full-cardinality symbol of `value` on dimension `dim`.
  std::uint8_t Quantize(std::size_t dim, float value) const;

  /// Interval bounds of symbol-prefix `prefix` at cardinality `card_bits`
  /// (1 … bits()) on dimension `dim`. Lower of prefix 0 is −inf; upper of
  /// the last prefix is +inf.
  float PrefixLower(std::size_t dim, std::uint32_t prefix,
                    std::uint32_t card_bits) const;
  float PrefixUpper(std::size_t dim, std::uint32_t prefix,
                    std::uint32_t card_bits) const;

  /// mindist (Eq. 2): distance from `value` to the interval of `prefix` at
  /// `card_bits`; 0 when the value lies inside.
  float MinDistPrefix(std::size_t dim, std::uint32_t prefix,
                      std::uint32_t card_bits, float value) const;

  /// mindist at full cardinality.
  float MinDist(std::size_t dim, std::uint8_t symbol, float value) const {
    return MinDistPrefix(dim, symbol, bits_, value);
  }

  /// Flat [dim·alphabet + symbol] arrays of interval bounds at full
  /// cardinality, ±inf padded — the SIMD gather inputs.
  const float* lower_bounds() const { return lower_.data(); }
  const float* upper_bounds() const { return upper_.data(); }

 private:
  std::size_t word_length_;
  std::size_t alphabet_;
  std::uint32_t bits_;
  // Padded edges, word_length_ × (alphabet_+1).
  std::vector<float> edges_;
  // Gather-friendly per-symbol bounds, word_length_ × alphabet_.
  AlignedVector<float> lower_;
  AlignedVector<float> upper_;
};

}  // namespace quant
}  // namespace sofa

#endif  // SOFA_QUANT_BREAKPOINT_TABLE_H_
