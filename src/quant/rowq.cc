#include "quant/rowq.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "core/distance.h"  // CpuSupportsAvx512
#include "util/check.h"

namespace sofa {
namespace quant {
namespace scalar {

float RowqLowerBoundSquared(const float* query, const float* mins,
                            const float* deltas, const std::uint8_t* code,
                            std::size_t padded_length) {
  // kRowqLanes independent accumulators, reduced with the same pairwise
  // tree the SIMD kernels use (see rowq_avx2.cc) — every float operation
  // here has an exact lane-for-lane counterpart there.
  float acc[kRowqLanes] = {0.0f};
  for (std::size_t i = 0; i < padded_length; i += kRowqLanes) {
    for (std::size_t j = 0; j < kRowqLanes; ++j) {
      const std::size_t d = i + j;
      const float c = static_cast<float>(code[d]);
      const float lo = mins[d] + c * deltas[d];
      const float hi = lo + deltas[d];
      const float a = lo - query[d];
      const float b = query[d] - hi;
      // Matches _mm256_max_ps semantics exactly (NaN in the first
      // operand yields the second; max(NaN, 0) = 0).
      float m = (a > b) ? a : b;
      m = (m > 0.0f) ? m : 0.0f;
      acc[j] += m * m;
    }
  }
  for (std::size_t j = 0; j < 8; ++j) acc[j] += acc[j + 8];
  for (std::size_t j = 0; j < 4; ++j) acc[j] += acc[j + 4];
  const float s0 = acc[0] + acc[2];
  const float s1 = acc[1] + acc[3];
  return s0 + s1;
}

float RowqLowerBoundSquaredEarlyAbandon(const float* query, const float* mins,
                                        const float* deltas,
                                        const std::uint8_t* code,
                                        std::size_t padded_length,
                                        float abandon) {
  float acc[kRowqLanes] = {0.0f};
  float partial = 0.0f;
  for (std::size_t i = 0; i < padded_length; i += kRowqLanes) {
    for (std::size_t j = 0; j < kRowqLanes; ++j) {
      const std::size_t d = i + j;
      const float c = static_cast<float>(code[d]);
      const float lo = mins[d] + c * deltas[d];
      const float hi = lo + deltas[d];
      const float a = lo - query[d];
      const float b = query[d] - hi;
      float m = (a > b) ? a : b;
      m = (m > 0.0f) ? m : 0.0f;
      acc[j] += m * m;
    }
    // Checkpoint: the final pairwise tree over the live accumulators.
    // Reads only — the accumulation is untouched, so a scan that never
    // abandons ends with exactly RowqLowerBoundSquared's bits.
    float r[kRowqLanes];
    for (std::size_t j = 0; j < 8; ++j) r[j] = acc[j] + acc[j + 8];
    for (std::size_t j = 0; j < 4; ++j) r[j] += r[j + 4];
    const float s0 = r[0] + r[2];
    const float s1 = r[1] + r[3];
    partial = s0 + s1;
    if (partial > abandon) {
      return partial;
    }
  }
  return partial;
}

}  // namespace scalar

float RowqLowerBoundSquared(const float* query, const float* mins,
                            const float* deltas, const std::uint8_t* code,
                            std::size_t padded_length) {
#if defined(SOFA_COMPILE_AVX512)
  if (CpuSupportsAvx512()) {
    return avx512::RowqLowerBoundSquared(query, mins, deltas, code,
                                         padded_length);
  }
#endif
#if defined(SOFA_HAVE_AVX2)
  return avx2::RowqLowerBoundSquared(query, mins, deltas, code, padded_length);
#else
  return scalar::RowqLowerBoundSquared(query, mins, deltas, code,
                                       padded_length);
#endif
}

float RowqLowerBoundSquaredEarlyAbandon(const float* query, const float* mins,
                                        const float* deltas,
                                        const std::uint8_t* code,
                                        std::size_t padded_length,
                                        float abandon) {
#if defined(SOFA_COMPILE_AVX512)
  if (CpuSupportsAvx512()) {
    return avx512::RowqLowerBoundSquaredEarlyAbandon(
        query, mins, deltas, code, padded_length, abandon);
  }
#endif
#if defined(SOFA_HAVE_AVX2)
  return avx2::RowqLowerBoundSquaredEarlyAbandon(query, mins, deltas, code,
                                                 padded_length, abandon);
#else
  return scalar::RowqLowerBoundSquaredEarlyAbandon(query, mins, deltas, code,
                                                   padded_length, abandon);
#endif
}

namespace {

// Interval bounds exactly as the kernel computes them — containment is
// only provable against these expressions, not against real arithmetic.
inline float KernelLo(float mn, float delta, unsigned c) {
  return mn + static_cast<float>(c) * delta;
}
inline float KernelHi(float lo, float delta) { return lo + delta; }

}  // namespace

RowQuantizer::RowQuantizer(std::size_t length, AlignedVector<float> mins,
                           AlignedVector<float> deltas)
    : length_(length),
      padded_(RoundUp(length, kRowqLanes)),
      mins_(std::move(mins)),
      deltas_(std::move(deltas)) {
  SOFA_CHECK(mins_.size() == padded_ && deltas_.size() == padded_);
  // Error budget: with verified containment each dimension's kernel
  // contribution exceeds its real value by at most (1+u)³ (u = 2⁻²⁴),
  // the lane summation adds ≤ (padded/16 + 6) more roundings, and the
  // exact kernel may round its own sum *down* by ≤ (n + 2) roundings —
  // so a relative margin of (2·padded + 128)·u = (padded + 64)·2⁻²³
  // strictly dominates, and one FLT_MIN of absolute slack covers
  // rounding at the bottom of the denormal range where relative error
  // bounds do not hold.
  deflate_ = static_cast<float>(
      1.0 - static_cast<double>(padded_ + 64) * 1.1920928955078125e-7);
}

std::shared_ptr<const RowQuantizer> RowQuantizer::Train(const Dataset& data) {
  const std::size_t n = data.length();
  const std::size_t padded = RoundUp(n, kRowqLanes);
  AlignedVector<float> mins(padded);   // zero-filled (pad dims stay 0)
  AlignedVector<float> deltas(padded);
  std::vector<float> maxs(n, -std::numeric_limits<float>::infinity());
  std::vector<float> lows(n, std::numeric_limits<float>::infinity());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float* row = data.row(i);
    for (std::size_t d = 0; d < n; ++d) {
      // Non-finite values are ignored so one NaN/inf row cannot poison
      // the whole grid; their rows are flagged unprunable when encoded
      // (any value the grid does not contain fails the containment
      // check there).
      if (!std::isfinite(row[d])) continue;
      if (row[d] < lows[d]) lows[d] = row[d];
      if (row[d] > maxs[d]) maxs[d] = row[d];
    }
  }
  for (std::size_t d = 0; d < n; ++d) {
    if (!(lows[d] <= maxs[d])) {  // empty dataset or all-non-finite dim
      lows[d] = 0.0f;
      maxs[d] = 0.0f;
    }
    mins[d] = lows[d];
    // In double so a range spanning ±FLT_MAX does not overflow to an
    // infinite delta (2·FLT_MAX/255 is representable as a float).
    deltas[d] = static_cast<float>((static_cast<double>(maxs[d]) -
                                    static_cast<double>(lows[d])) /
                                   255.0);
  }
  return std::shared_ptr<const RowQuantizer>(
      new RowQuantizer(n, std::move(mins), std::move(deltas)));
}

std::shared_ptr<const RowQuantizer> RowQuantizer::FromParts(
    std::size_t length, AlignedVector<float> mins,
    AlignedVector<float> deltas) {
  return std::shared_ptr<const RowQuantizer>(
      new RowQuantizer(length, std::move(mins), std::move(deltas)));
}

bool RowQuantizer::Encode(const float* row, std::uint8_t* code) const {
  bool prunable = true;
  for (std::size_t d = 0; d < length_; ++d) {
    const float x = row[d];
    const float mn = mins_[d];
    const float delta = deltas_[d];
    if (!std::isfinite(x)) {
      prunable = false;
      break;
    }
    unsigned c = 0;
    if (delta > 0.0f && std::isfinite(delta)) {
      const float t = (x - mn) / delta;
      if (t >= 255.0f) {
        c = 255;
      } else if (t > 0.0f) {
        c = static_cast<unsigned>(t);
      }
    }
    // Verify containment against the kernel's own float expressions,
    // nudging the code when rounding pushed the interval off the value.
    float lo = KernelLo(mn, delta, c);
    while (!(lo <= x) && c > 0) {
      --c;
      lo = KernelLo(mn, delta, c);
    }
    float hi = KernelHi(lo, delta);
    while (!(hi >= x) && c < 255) {
      ++c;
      lo = KernelLo(mn, delta, c);
      hi = KernelHi(lo, delta);
    }
    if (!(lo <= x && x <= hi)) {
      prunable = false;
      break;
    }
    code[d] = static_cast<std::uint8_t>(c);
  }
  if (!prunable) {
    std::memset(code, 0, padded_);
    return false;
  }
  std::memset(code + length_, 0, padded_ - length_);
  return true;
}

void RowQuantizer::PadQuery(const float* query, float* padded) const {
  std::memcpy(padded, query, length_ * sizeof(float));
  for (std::size_t d = length_; d < padded_; ++d) padded[d] = 0.0f;
}

float RowQuantizer::AdjustedLowerBound(float raw) const {
  // NaN, inf and near-overflow sums all fail this predicate and yield a
  // vacuous bound — the deflation identity below is only valid when no
  // intermediate on either side of the comparison overflowed.
  if (!(raw < std::numeric_limits<float>::max() * 0.25f)) {
    return 0.0f;
  }
  const float adjusted =
      raw * deflate_ - std::numeric_limits<float>::min();
  return (adjusted > 0.0f) ? adjusted : 0.0f;
}

float RowQuantizer::RawAbandonThreshold(float bound, float inflation_sq) const {
  // Inverse of AdjustedLowerBound ∘ (* inflation_sq), computed in double
  // and nudged up so rounding errs toward scanning one block too many
  // rather than abandoning on a sum the exact predicate then rejects.
  // Overflow (huge bounds) casts to +inf: the scan simply never stops
  // early and the full-sum path decides.
  const double target =
      (static_cast<double>(bound) / static_cast<double>(inflation_sq) +
       static_cast<double>(std::numeric_limits<float>::min())) /
      static_cast<double>(deflate_);
  return static_cast<float>(target * (1.0 + 1e-6));
}

RowQuant::RowQuant(std::shared_ptr<const RowQuantizer> quantizer,
                   AlignedVector<std::uint8_t> codes,
                   std::vector<std::uint8_t> prunable, std::size_t rows)
    : quantizer_(std::move(quantizer)),
      codes_(std::move(codes)),
      prunable_(std::move(prunable)),
      rows_(rows) {
  SOFA_CHECK(codes_.size() == rows_ * quantizer_->padded_length());
  SOFA_CHECK(prunable_.size() == rows_);
}

std::shared_ptr<const RowQuant> RowQuant::Build(const Dataset& data) {
  std::shared_ptr<const RowQuantizer> quantizer = RowQuantizer::Train(data);
  const std::size_t rows = data.size();
  const std::size_t padded = quantizer->padded_length();
  AlignedVector<std::uint8_t> codes(rows * padded);
  std::vector<std::uint8_t> prunable(rows, 0);
  for (std::size_t i = 0; i < rows; ++i) {
    prunable[i] =
        quantizer->Encode(data.row(i), codes.data() + i * padded) ? 1 : 0;
  }
  return std::shared_ptr<const RowQuant>(new RowQuant(
      std::move(quantizer), std::move(codes), std::move(prunable), rows));
}

std::shared_ptr<const RowQuant> RowQuant::FromParts(
    std::shared_ptr<const RowQuantizer> quantizer,
    AlignedVector<std::uint8_t> codes, std::vector<std::uint8_t> prunable,
    std::size_t rows) {
  return std::shared_ptr<const RowQuant>(new RowQuant(
      std::move(quantizer), std::move(codes), std::move(prunable), rows));
}

RowQuantView::RowQuantView(const RowQuant* rowq, const float* query)
    : rowq_(rowq), padded_query_(rowq->quantizer().padded_length()) {
  rowq_->quantizer().PadQuery(query, padded_query_.data());
}

float RowQuantView::LowerBound(std::size_t i) const {
  const RowQuantizer& q = rowq_->quantizer();
  const float raw = RowqLowerBoundSquared(padded_query_.data(), q.mins(),
                                          q.deltas(), rowq_->code(i),
                                          q.padded_length());
  return q.AdjustedLowerBound(raw);
}

float RowQuantView::LowerBoundEarlyAbandon(std::size_t i,
                                           float raw_abandon) const {
  const RowQuantizer& q = rowq_->quantizer();
  const float raw = RowqLowerBoundSquaredEarlyAbandon(
      padded_query_.data(), q.mins(), q.deltas(), rowq_->code(i),
      q.padded_length(), raw_abandon);
  return q.AdjustedLowerBound(raw);
}

float RowQuantView::RawAbandonThreshold(float bound,
                                        float inflation_sq) const {
  return rowq_->quantizer().RawAbandonThreshold(bound, inflation_sq);
}

}  // namespace quant
}  // namespace sofa
