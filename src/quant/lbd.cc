#include "quant/lbd.h"

#include "core/distance.h"  // CpuSupportsAvx512

namespace sofa {
namespace quant {
namespace scalar {

float LbdSquared(const BreakpointTable& table, const float* weights,
                 const float* query_values, const std::uint8_t* word) {
  const std::size_t l = table.word_length();
  const std::size_t alphabet = table.alphabet();
  const float* lower = table.lower_bounds();
  const float* upper = table.upper_bounds();
  float sum = 0.0f;
  for (std::size_t dim = 0; dim < l; ++dim) {
    const std::size_t idx = dim * alphabet + word[dim];
    const float q = query_values[dim];
    float d = 0.0f;
    if (q < lower[idx]) {
      d = lower[idx] - q;
    } else if (q > upper[idx]) {
      d = q - upper[idx];
    }
    sum += weights[dim] * d * d;
  }
  return sum;
}

float LbdSquaredEarlyAbandon(const BreakpointTable& table,
                             const float* weights, const float* query_values,
                             const std::uint8_t* word, float bound) {
  const std::size_t l = table.word_length();
  const std::size_t alphabet = table.alphabet();
  const float* lower = table.lower_bounds();
  const float* upper = table.upper_bounds();
  float sum = 0.0f;
  std::size_t dim = 0;
  while (dim < l) {
    const std::size_t chunk_end = std::min(l, dim + 8);
    for (; dim < chunk_end; ++dim) {
      const std::size_t idx = dim * alphabet + word[dim];
      const float q = query_values[dim];
      float d = 0.0f;
      if (q < lower[idx]) {
        d = lower[idx] - q;
      } else if (q > upper[idx]) {
        d = q - upper[idx];
      }
      sum += weights[dim] * d * d;
    }
    if (sum > bound) {
      return sum;
    }
  }
  return sum;
}

}  // namespace scalar

float LbdSquared(const BreakpointTable& table, const float* weights,
                 const float* query_values, const std::uint8_t* word) {
#if defined(SOFA_COMPILE_AVX512)
  if (CpuSupportsAvx512()) {
    return avx512::LbdSquared(table, weights, query_values, word);
  }
#endif
#if defined(SOFA_HAVE_AVX2)
  return avx2::LbdSquared(table, weights, query_values, word);
#else
  return scalar::LbdSquared(table, weights, query_values, word);
#endif
}

float LbdSquaredEarlyAbandon(const BreakpointTable& table,
                             const float* weights, const float* query_values,
                             const std::uint8_t* word, float bound) {
#if defined(SOFA_COMPILE_AVX512)
  if (CpuSupportsAvx512()) {
    return avx512::LbdSquaredEarlyAbandon(table, weights, query_values, word,
                                          bound);
  }
#endif
#if defined(SOFA_HAVE_AVX2)
  return avx2::LbdSquaredEarlyAbandon(table, weights, query_values, word,
                                      bound);
#else
  return scalar::LbdSquaredEarlyAbandon(table, weights, query_values, word,
                                        bound);
#endif
}

float NodeLbdSquared(const BreakpointTable& table, const float* weights,
                     const float* query_values, const std::uint8_t* prefixes,
                     const std::uint8_t* card_bits) {
  const std::size_t l = table.word_length();
  float sum = 0.0f;
  for (std::size_t dim = 0; dim < l; ++dim) {
    if (card_bits[dim] == 0) {
      continue;  // dimension not yet constrained at this node
    }
    const float d = table.MinDistPrefix(dim, prefixes[dim], card_bits[dim],
                                        query_values[dim]);
    sum += weights[dim] * d * d;
  }
  return sum;
}

}  // namespace quant
}  // namespace sofa
