// Row quantization (rowq) — the compressed pruning tier that sits between
// the summary-based LBD pruning and the exact early-abandon kernel.
//
// Each row is stored a second time as u8 codes under a per-dimension
// min/delta grid: code c of dimension d denotes the interval
// [lo, hi] = [fl(min_d + fl(c * delta_d)), fl(lo + delta_d)]. The rowq
// distance is the squared L2 distance from the query to that box:
//
//   rowq²(q, code) = Σ_d max(lo_d − q_d, q_d − hi_d, 0)²
//
// which lower-bounds the exact squared L2 whenever the original value
// lies inside its interval — the same admissibility shape as the SFA/SAX
// mindist (Eq. 2), but per row at u8 resolution: ~4x less memory traffic
// than streaming float32 rows, so most candidates die before the exact
// kernel ever touches full-precision data (the LVQ/SAQ "compressed scan
// ahead of full-precision rerank" pattern).
//
// Exactness contract — the engine prunes on these bounds while promising
// bit-identical answers to the rowq-off configuration, so every numeric
// hazard is handled explicitly:
//
//  * Containment is *verified at encode time* with the identical float
//    expressions the kernel evaluates (lo = fl(min + fl(c·delta)),
//    hi = fl(lo + delta)); a code is nudged up/down until lo ≤ x ≤ hi
//    holds, and a row where any dimension cannot be contained (NaN/±inf
//    values, grid overflow) is flagged unprunable and always takes the
//    exact kernel.
//  * Given containment, every kernel operation is a single rounding of
//    an exact intermediate (no compound subtraction, no FMA — rowq
//    translation units are compiled with -ffp-contract=off), so the
//    per-dimension contribution exceeds its real value by a *relative*
//    factor ≤ (1+2⁻²⁴)³ with no absolute term. AdjustedLowerBound()
//    deflates the accumulated sum by a margin covering both the kernel's
//    summation error and the exact kernel's own downward rounding, then
//    subtracts one FLT_MIN of absolute slack for denormal rounding, so
//    the published bound never exceeds the float the exact kernel would
//    report. Sums that overflow toward FLT_MAX deflate to 0 (no prune).
//  * Scalar, AVX2 and AVX512 kernels are *bit-identical*, not merely
//    close: all three accumulate into kRowqLanes independent lanes over
//    a zero-padded length (pad dimensions contribute exact zeros) and
//    reduce with the same pairwise tree, so CI can assert equality and
//    persisted bounds do not depend on the serving machine's ISA.
//
// RowQuant is the immutable per-index sidecar (codes + flags, built at
// compaction, persisted as shard-<s>.rq); RowQuantView is the per-query
// cursor that pads the query once and serves deflated bounds.

#ifndef SOFA_QUANT_ROWQ_H_
#define SOFA_QUANT_ROWQ_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/dataset.h"
#include "util/aligned.h"

namespace sofa {
namespace quant {

/// Lane count of the rowq kernels. Every kernel (scalar included)
/// maintains this many independent accumulators and reduces them with
/// the same pairwise tree, which is what makes the ISAs bit-identical.
/// Rows are padded to a multiple of this many dimensions.
inline constexpr std::size_t kRowqLanes = 16;

namespace scalar {
/// Squared box lower bound over `padded_length` dimensions (a multiple
/// of kRowqLanes). `query`, `mins` and `deltas` hold padded floats;
/// `code` holds padded u8 codes. No early abandon: the full sum is the
/// contract all ISAs agree on bit for bit.
float RowqLowerBoundSquared(const float* query, const float* mins,
                            const float* deltas, const std::uint8_t* code,
                            std::size_t padded_length);

/// Early-abandoning variant: after each kRowqLanes-dimension block the
/// accumulators are reduced with the final pairwise tree, and the scan
/// stops (returning that partial sum) once the partial exceeds
/// `abandon`. Because the checkpoints and the reduction are the same in
/// every ISA, the returned float — partial or full — is bit-identical
/// across scalar/AVX2/AVX512; with abandon = +inf it returns exactly
/// what RowqLowerBoundSquared returns. A partial sum of the same
/// non-negative terms is itself an admissible (smaller) lower bound, so
/// callers apply the identical AdjustedLowerBound predicate to whatever
/// comes back.
float RowqLowerBoundSquaredEarlyAbandon(const float* query, const float* mins,
                                        const float* deltas,
                                        const std::uint8_t* code,
                                        std::size_t padded_length,
                                        float abandon);
}  // namespace scalar

#if defined(SOFA_HAVE_AVX2)
namespace avx2 {
float RowqLowerBoundSquared(const float* query, const float* mins,
                            const float* deltas, const std::uint8_t* code,
                            std::size_t padded_length);
float RowqLowerBoundSquaredEarlyAbandon(const float* query, const float* mins,
                                        const float* deltas,
                                        const std::uint8_t* code,
                                        std::size_t padded_length,
                                        float abandon);
}  // namespace avx2
#endif  // SOFA_HAVE_AVX2

#if defined(SOFA_COMPILE_AVX512)
namespace avx512 {
float RowqLowerBoundSquared(const float* query, const float* mins,
                            const float* deltas, const std::uint8_t* code,
                            std::size_t padded_length);
float RowqLowerBoundSquaredEarlyAbandon(const float* query, const float* mins,
                                        const float* deltas,
                                        const std::uint8_t* code,
                                        std::size_t padded_length,
                                        float abandon);
}  // namespace avx512
#endif  // SOFA_COMPILE_AVX512

/// Best-available kernel (bit-identical to scalar by construction).
float RowqLowerBoundSquared(const float* query, const float* mins,
                            const float* deltas, const std::uint8_t* code,
                            std::size_t padded_length);

/// Best-available early-abandoning kernel (see scalar:: for contract).
float RowqLowerBoundSquaredEarlyAbandon(const float* query, const float* mins,
                                        const float* deltas,
                                        const std::uint8_t* code,
                                        std::size_t padded_length,
                                        float abandon);

/// The per-dimension grid: mins/deltas over the padded length, plus the
/// deflation factor derived from it. Shared by every chunk of an
/// InsertBuffer and by the tree sidecar of the same shard, so a row
/// encodes to the same bytes wherever it lives.
class RowQuantizer {
 public:
  /// Fits a grid to `data` (per-dimension min/max, delta = range/255).
  /// NaNs are ignored during training; rows containing them are flagged
  /// unprunable at encode time. `data` may be empty (degenerate grid:
  /// everything encodes at code 0 via the containment check or is
  /// flagged unprunable).
  static std::shared_ptr<const RowQuantizer> Train(const Dataset& data);

  /// Reassembles a grid from persisted padded arrays (`mins`/`deltas`
  /// hold RoundUp(length, kRowqLanes) floats; pad dimensions must be 0).
  static std::shared_ptr<const RowQuantizer> FromParts(
      std::size_t length, AlignedVector<float> mins,
      AlignedVector<float> deltas);

  std::size_t length() const { return length_; }
  std::size_t padded_length() const { return padded_; }
  const float* mins() const { return mins_.data(); }
  const float* deltas() const { return deltas_.data(); }

  /// Encodes one row (length() floats) into `code` (padded_length()
  /// bytes, pad dimensions zeroed). Returns true when every dimension
  /// verifies containment — the row may then be pruned on its bound.
  /// Returns false (codes zeroed) for rows the grid cannot contain;
  /// such rows must always take the exact kernel.
  bool Encode(const float* row, std::uint8_t* code) const;

  /// Copies `query` (length() floats) into `padded` (padded_length()
  /// floats, pad dimensions zeroed — they contribute exact zeros).
  void PadQuery(const float* query, float* padded) const;

  /// Deflates a raw kernel sum into a bound that provably never exceeds
  /// the float distance the exact kernel reports. NaN/inf/near-overflow
  /// sums deflate to 0 (never prune).
  float AdjustedLowerBound(float raw) const;

  /// Raw-sum threshold at which a scan may stop early when chasing the
  /// predicate AdjustedLowerBound(raw) * inflation_sq >= bound: a
  /// partial sum at or above this value almost certainly satisfies it.
  /// Callers MUST still re-apply the exact predicate to the returned
  /// sum — the threshold steers only where the kernel stops, never what
  /// the tier answers, so its own rounding cannot affect exactness.
  float RawAbandonThreshold(float bound, float inflation_sq) const;

 private:
  RowQuantizer(std::size_t length, AlignedVector<float> mins,
               AlignedVector<float> deltas);

  std::size_t length_;
  std::size_t padded_;
  AlignedVector<float> mins_;    // padded_ floats, pad dims 0
  AlignedVector<float> deltas_;  // padded_ floats, pad dims 0
  float deflate_;                // multiplicative error margin
};

/// Immutable quantized sidecar of one index slice: the grid plus one
/// padded code row and one prunability flag per row, row i aligned with
/// the slice's local row i.
class RowQuant {
 public:
  /// Trains a grid on `data` and encodes every row.
  static std::shared_ptr<const RowQuant> Build(const Dataset& data);

  /// Reassembles a sidecar from persisted parts. `codes` holds
  /// rows * quantizer->padded_length() bytes; `prunable` holds one byte
  /// per row (0 = unprunable).
  static std::shared_ptr<const RowQuant> FromParts(
      std::shared_ptr<const RowQuantizer> quantizer,
      AlignedVector<std::uint8_t> codes, std::vector<std::uint8_t> prunable,
      std::size_t rows);

  std::size_t rows() const { return rows_; }
  const RowQuantizer& quantizer() const { return *quantizer_; }
  const std::shared_ptr<const RowQuantizer>& quantizer_ptr() const {
    return quantizer_;
  }
  const std::uint8_t* code(std::size_t i) const {
    return codes_.data() + i * quantizer_->padded_length();
  }
  bool prunable(std::size_t i) const { return prunable_[i] != 0; }

  /// Raw storage, for persistence.
  const AlignedVector<std::uint8_t>& codes() const { return codes_; }
  const std::vector<std::uint8_t>& prunable_flags() const { return prunable_; }

  /// Bytes of quantized payload held (codes + flags).
  std::size_t MemoryBytes() const { return codes_.size() + prunable_.size(); }

 private:
  RowQuant(std::shared_ptr<const RowQuantizer> quantizer,
           AlignedVector<std::uint8_t> codes, std::vector<std::uint8_t> prunable,
           std::size_t rows);

  std::shared_ptr<const RowQuantizer> quantizer_;
  AlignedVector<std::uint8_t> codes_;  // rows_ * padded_length() bytes
  std::vector<std::uint8_t> prunable_;
  std::size_t rows_;
};

/// Per-query cursor over a sidecar: pads the query once, then serves
/// deflated lower bounds per row.
class RowQuantView {
 public:
  RowQuantView(const RowQuant* rowq, const float* query);

  bool prunable(std::size_t i) const { return rowq_->prunable(i); }

  /// Deflated admissible lower bound on the exact squared L2 between
  /// the query and row i. Only meaningful when prunable(i).
  float LowerBound(std::size_t i) const;

  /// Early-abandoning LowerBound: the scan may stop once its raw
  /// partial sum exceeds `raw_abandon` (see RawAbandonThreshold). The
  /// returned value is the adjusted bound of whatever raw sum the
  /// kernel produced — partial sums deflate to smaller, still
  /// admissible bounds, so the caller's pruning predicate is applied
  /// unchanged.
  float LowerBoundEarlyAbandon(std::size_t i, float raw_abandon) const;

  /// Forwarded from the quantizer, for callers holding only the view.
  float RawAbandonThreshold(float bound, float inflation_sq) const;

 private:
  const RowQuant* rowq_;
  AlignedVector<float> padded_query_;
};

}  // namespace quant
}  // namespace sofa

#endif  // SOFA_QUANT_ROWQ_H_
