// Complex FFT of arbitrary length.
//
// Power-of-two lengths run an iterative radix-2 Cooley–Tukey with
// precomputed twiddles and bit-reversal table. All other lengths (the
// benchmark has series of length 96, 100 …) go through Bluestein's chirp-z
// algorithm, which reduces them to one power-of-two convolution.
//
// A plan is immutable after construction and safe to share across threads;
// per-transform scratch lives in a Scratch object each caller (thread) owns.

#ifndef SOFA_DFT_FFT_H_
#define SOFA_DFT_FFT_H_

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sofa {
namespace dft {

/// True if n is a power of two (n ≥ 1).
constexpr bool IsPowerOfTwo(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two ≥ n.
std::size_t NextPowerOfTwo(std::size_t n);

/// Precomputed FFT plan for one transform length.
class Fft {
 public:
  /// Reusable per-thread scratch space.
  struct Scratch {
    std::vector<std::complex<double>> a;
    std::vector<std::complex<double>> b;
  };

  explicit Fft(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place unnormalized forward transform (sign −1 convention).
  void Forward(std::complex<double>* data, Scratch* scratch) const;

  /// In-place inverse transform, scaled by 1/n (Forward ∘ Inverse == id).
  void Inverse(std::complex<double>* data, Scratch* scratch) const;

 private:
  // Radix-2 in-place transform for power-of-two sizes.
  void Radix2(std::complex<double>* data, std::size_t n, bool inverse) const;
  // Bluestein chirp-z for arbitrary sizes.
  void Bluestein(std::complex<double>* data, bool inverse,
                 Scratch* scratch) const;

  std::size_t n_;
  // Radix-2 machinery for n_ when it is a power of two, otherwise for the
  // internal Bluestein length m_.
  std::size_t pow2_n_;
  std::vector<std::uint32_t> bit_reverse_;
  std::vector<std::complex<double>> twiddles_;  // per-stage, concatenated

  // Bluestein state (empty when n_ is a power of two).
  std::size_t m_ = 0;                            // pow2 convolution length
  std::vector<std::complex<double>> chirp_;      // e^{-iπ t²/n}, t ∈ [0,n)
  std::vector<std::complex<double>> b_forward_;  // FFT of the chirp kernel
};

}  // namespace dft
}  // namespace sofa

#endif  // SOFA_DFT_FFT_H_
