// Forward/inverse DFT of real data series with the normalization used for
// lower bounding.
//
// Coefficients are scaled by 1/√n so that Parseval reads
//   Σ_t x_t² = |c_0|² + 2·Σ_{k=1}^{K-1} |c_k|² (+ |c_{n/2}|² once, n even),
// which is exactly the identity behind the DFT lower bound to the Euclidean
// distance (paper Eq. 1): any subset of coefficient differences, with weight
// 2 on paired coefficients and 1 on DC/Nyquist, lower-bounds ED².

#ifndef SOFA_DFT_REAL_DFT_H_
#define SOFA_DFT_REAL_DFT_H_

#include <complex>
#include <cstddef>

#include "dft/fft.h"

namespace sofa {
namespace dft {

/// Immutable, thread-shareable plan for real-input DFTs of one length.
///
/// Power-of-two lengths use the half-size complex FFT packing trick; other
/// lengths run the full-size (Bluestein-backed) complex transform.
class RealDftPlan {
 public:
  /// Per-thread scratch buffers.
  struct Scratch {
    Fft::Scratch fft;
    std::vector<std::complex<double>> buf;
  };

  explicit RealDftPlan(std::size_t n);

  /// Input series length n.
  std::size_t input_length() const { return n_; }

  /// Number of unique coefficients: ⌊n/2⌋+1 (k = 0 … ⌊n/2⌋).
  std::size_t num_coefficients() const { return n_ / 2 + 1; }

  /// True if coefficient k is its own conjugate pair (weight 1 in
  /// Parseval): DC, and Nyquist for even n.
  bool IsUnpaired(std::size_t k) const {
    return k == 0 || (n_ % 2 == 0 && k == n_ / 2);
  }

  /// Forward transform: writes num_coefficients() normalized coefficients.
  void Transform(const float* in, std::complex<float>* out,
                 Scratch* scratch) const;

  /// Convenience overload with internally managed scratch (thread-safe but
  /// allocates; prefer the scratch version in hot loops).
  void Transform(const float* in, std::complex<float>* out) const;

  /// Inverse: reconstructs the length-n real series from the unique
  /// coefficient set produced by Transform.
  void InverseTransform(const std::complex<float>* coeffs, float* out,
                        Scratch* scratch) const;

 private:
  std::size_t n_;
  bool use_half_packing_;
  Fft fft_;       // size n/2 when packing, else size n
  Fft full_fft_;  // size n, used by InverseTransform
};

}  // namespace dft
}  // namespace sofa

#endif  // SOFA_DFT_REAL_DFT_H_
