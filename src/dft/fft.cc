#include "dft/fft.h"

#include <cmath>

#include "util/check.h"

namespace sofa {
namespace dft {

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

namespace {

// e^{-iπ·(t² mod 2n)/n}; reducing t² modulo 2n keeps the angle in
// [0, 2π) so precision does not degrade for large t.
std::complex<double> ChirpFactor(std::uint64_t t, std::uint64_t n) {
  const std::uint64_t t_sq_mod = (t * t) % (2 * n);
  const double angle =
      -M_PI * static_cast<double>(t_sq_mod) / static_cast<double>(n);
  return {std::cos(angle), std::sin(angle)};
}

}  // namespace

Fft::Fft(std::size_t n) : n_(n) {
  SOFA_CHECK(n_ >= 1);
  pow2_n_ = IsPowerOfTwo(n_) ? n_ : NextPowerOfTwo(2 * n_ - 1);
  if (!IsPowerOfTwo(n_)) {
    m_ = pow2_n_;
  }

  // Bit-reversal permutation for the radix-2 size.
  bit_reverse_.resize(pow2_n_);
  std::uint32_t bits = 0;
  while ((std::size_t{1} << bits) < pow2_n_) {
    ++bits;
  }
  for (std::size_t i = 0; i < pow2_n_; ++i) {
    std::uint32_t reversed = 0;
    for (std::uint32_t b = 0; b < bits; ++b) {
      if (i & (std::size_t{1} << b)) {
        reversed |= std::uint32_t{1} << (bits - 1 - b);
      }
    }
    bit_reverse_[i] = reversed;
  }

  // Stage twiddles: for each butterfly span len ∈ {2,4,…,pow2_n_}, the
  // len/2 factors e^{-2πi·j/len}; stages are concatenated.
  twiddles_.reserve(pow2_n_);
  for (std::size_t len = 2; len <= pow2_n_; len <<= 1) {
    for (std::size_t j = 0; j < len / 2; ++j) {
      const double angle =
          -2.0 * M_PI * static_cast<double>(j) / static_cast<double>(len);
      twiddles_.emplace_back(std::cos(angle), std::sin(angle));
    }
  }

  if (m_ != 0) {
    // Bluestein chirp and the pre-transformed convolution kernel.
    chirp_.resize(n_);
    for (std::size_t t = 0; t < n_; ++t) {
      chirp_[t] = ChirpFactor(t, n_);
    }
    std::vector<std::complex<double>> b(m_, {0.0, 0.0});
    b[0] = std::conj(chirp_[0]);
    for (std::size_t t = 1; t < n_; ++t) {
      b[t] = std::conj(chirp_[t]);
      b[m_ - t] = b[t];  // wrap-around for circular convolution
    }
    Radix2(b.data(), m_, /*inverse=*/false);
    b_forward_ = std::move(b);
  }
}

void Fft::Radix2(std::complex<double>* data, std::size_t n,
                 bool inverse) const {
  SOFA_DCHECK(n == pow2_n_);
  if (n <= 1) {
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  std::size_t stage_offset = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t block = 0; block < n; block += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const std::complex<double> w = inverse
                                           ? std::conj(twiddles_[stage_offset + j])
                                           : twiddles_[stage_offset + j];
        const std::complex<double> u = data[block + j];
        const std::complex<double> v = data[block + j + half] * w;
        data[block + j] = u + v;
        data[block + j + half] = u - v;
      }
    }
    stage_offset += half;
  }
}

void Fft::Bluestein(std::complex<double>* data, bool inverse,
                    Scratch* scratch) const {
  SOFA_DCHECK(scratch != nullptr);
  auto& a = scratch->a;
  a.assign(m_, {0.0, 0.0});
  if (inverse) {
    for (std::size_t t = 0; t < n_; ++t) {
      a[t] = std::conj(data[t]) * chirp_[t];
    }
  } else {
    for (std::size_t t = 0; t < n_; ++t) {
      a[t] = data[t] * chirp_[t];
    }
  }
  Radix2(a.data(), m_, /*inverse=*/false);
  for (std::size_t i = 0; i < m_; ++i) {
    a[i] *= b_forward_[i];
  }
  Radix2(a.data(), m_, /*inverse=*/true);
  const double inv_m = 1.0 / static_cast<double>(m_);
  if (inverse) {
    for (std::size_t k = 0; k < n_; ++k) {
      data[k] = std::conj(a[k] * inv_m * chirp_[k]);
    }
  } else {
    for (std::size_t k = 0; k < n_; ++k) {
      data[k] = a[k] * inv_m * chirp_[k];
    }
  }
}

void Fft::Forward(std::complex<double>* data, Scratch* scratch) const {
  if (n_ == 1) {
    return;
  }
  if (m_ == 0) {
    Radix2(data, n_, /*inverse=*/false);
  } else {
    Bluestein(data, /*inverse=*/false, scratch);
  }
}

void Fft::Inverse(std::complex<double>* data, Scratch* scratch) const {
  if (n_ == 1) {
    return;
  }
  if (m_ == 0) {
    Radix2(data, n_, /*inverse=*/true);
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      data[i] *= inv_n;
    }
  } else {
    Bluestein(data, /*inverse=*/true, scratch);
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      data[i] *= inv_n;
    }
  }
}

}  // namespace dft
}  // namespace sofa
