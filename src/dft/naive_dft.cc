#include "dft/naive_dft.h"

#include <cmath>

namespace sofa {
namespace dft {

void NaiveDft(const float* in, std::size_t n, std::complex<double>* out) {
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> sum(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      sum += static_cast<double>(in[t]) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = sum;
  }
}

void NaiveDftComplex(const std::complex<double>* in, std::size_t n,
                     std::complex<double>* out) {
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> sum(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      sum += in[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = sum;
  }
}

}  // namespace dft
}  // namespace sofa
