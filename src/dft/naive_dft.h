// O(n²) reference DFT used as the correctness oracle for the FFT stack.

#ifndef SOFA_DFT_NAIVE_DFT_H_
#define SOFA_DFT_NAIVE_DFT_H_

#include <complex>
#include <cstddef>

namespace sofa {
namespace dft {

/// Unnormalized forward DFT of a real input:
/// out[k] = Σ_t in[t]·e^{−2πi·k·t/n}, k ∈ [0, n).
void NaiveDft(const float* in, std::size_t n, std::complex<double>* out);

/// Unnormalized forward DFT of a complex input.
void NaiveDftComplex(const std::complex<double>* in, std::size_t n,
                     std::complex<double>* out);

}  // namespace dft
}  // namespace sofa

#endif  // SOFA_DFT_NAIVE_DFT_H_
