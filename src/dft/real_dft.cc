#include "dft/real_dft.h"

#include <cmath>

#include "util/check.h"

namespace sofa {
namespace dft {

RealDftPlan::RealDftPlan(std::size_t n)
    : n_(n),
      use_half_packing_(IsPowerOfTwo(n) && n >= 2),
      fft_(use_half_packing_ ? n / 2 : n),
      full_fft_(n) {
  SOFA_CHECK(n_ >= 2) << "series length must be at least 2";
}

void RealDftPlan::Transform(const float* in, std::complex<float>* out,
                            Scratch* scratch) const {
  SOFA_DCHECK(scratch != nullptr);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n_));
  auto& buf = scratch->buf;

  if (use_half_packing_) {
    // Pack x[2t] + i·x[2t+1]; one half-size complex FFT recovers the full
    // real-input spectrum via the even/odd untangling identities.
    const std::size_t h = n_ / 2;
    buf.resize(h);
    for (std::size_t t = 0; t < h; ++t) {
      buf[t] = {static_cast<double>(in[2 * t]),
                static_cast<double>(in[2 * t + 1])};
    }
    fft_.Forward(buf.data(), &scratch->fft);
    for (std::size_t k = 0; k <= h; ++k) {
      const std::size_t k_mod = k % h;
      const std::size_t conj_k = (h - k_mod) % h;
      const std::complex<double> z_k = buf[k_mod];
      const std::complex<double> z_c = std::conj(buf[conj_k]);
      const std::complex<double> even = 0.5 * (z_k + z_c);
      const std::complex<double> odd =
          std::complex<double>(0.0, -0.5) * (z_k - z_c);
      std::complex<double> coeff;
      if (k == h) {
        coeff = even - odd;  // Nyquist bin
      } else {
        const double angle =
            -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n_);
        coeff = even + std::complex<double>(std::cos(angle), std::sin(angle)) *
                           odd;
      }
      out[k] = std::complex<float>(static_cast<float>(coeff.real() * scale),
                                   static_cast<float>(coeff.imag() * scale));
    }
    return;
  }

  buf.resize(n_);
  for (std::size_t t = 0; t < n_; ++t) {
    buf[t] = {static_cast<double>(in[t]), 0.0};
  }
  fft_.Forward(buf.data(), &scratch->fft);
  const std::size_t nc = num_coefficients();
  for (std::size_t k = 0; k < nc; ++k) {
    out[k] = std::complex<float>(static_cast<float>(buf[k].real() * scale),
                                 static_cast<float>(buf[k].imag() * scale));
  }
}

void RealDftPlan::Transform(const float* in, std::complex<float>* out) const {
  Scratch scratch;
  Transform(in, out, &scratch);
}

void RealDftPlan::InverseTransform(const std::complex<float>* coeffs,
                                   float* out, Scratch* scratch) const {
  SOFA_DCHECK(scratch != nullptr);
  // Rebuild the full conjugate-symmetric spectrum, undo the 1/√n scaling,
  // and run one complex inverse transform.
  const double scale = std::sqrt(static_cast<double>(n_));
  auto& buf = scratch->buf;
  buf.resize(n_);
  const std::size_t nc = num_coefficients();
  for (std::size_t k = 0; k < nc; ++k) {
    buf[k] = std::complex<double>(coeffs[k].real(), coeffs[k].imag()) * scale;
  }
  for (std::size_t k = nc; k < n_; ++k) {
    buf[k] = std::conj(buf[n_ - k]);
  }
  full_fft_.Inverse(buf.data(), &scratch->fft);
  for (std::size_t t = 0; t < n_; ++t) {
    out[t] = static_cast<float>(buf[t].real());
  }
}

}  // namespace dft
}  // namespace sofa
