// The canonical request/response API of the serving stack — one pair of
// transport-neutral structs shared verbatim by the in-process path
// (service::SearchService::Submit) and the network path (net/protocol
// serializes exactly these fields; docs/PROTOCOL.md is their byte-level
// mirror). Fields split into two groups:
//
//   * wire fields — query, k, epsilon, priority, tenant, deadline_ms,
//     collect_profile, collect_trace — carry identical meaning on both
//     transports and round-trip through net::EncodeSearchRequest /
//     DecodeSearchRequest bit-for-bit;
//   * in-process-only fields — the absolute steady_clock `deadline`, the
//     response's shared TraceRecord handle — never serialized directly
//     (the server derives the absolute deadline from deadline_ms at
//     admission; traces travel as rendered text plus, at protocol v2, a
//     structured blob the client decodes back into a TraceRecord).
//
// Outcomes use the library-wide StatusCode taxonomy (util/status.h), so
// a network client sees exactly the statuses an embedder does.

#ifndef SOFA_SERVICE_REQUEST_H_
#define SOFA_SERVICE_REQUEST_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/neighbor.h"
#include "index/tree_index.h"
#include "obs/trace.h"
#include "util/status.h"

namespace sofa {
namespace service {

/// Outcome of one request — the library-wide taxonomy. Relevant codes:
/// kOk, kRejected (admission queue full), kDeadlineExpired, kShutdown,
/// kInvalidArgument (query length mismatch), kQuotaExceeded (per-tenant
/// in-flight cap).
using RequestStatus = ::sofa::StatusCode;

/// Admission priority class of a request. Admission ordering serves
/// interactive before batch before background (with a bounded
/// anti-starvation reserve — see ServiceConfig::priority_reserve).
enum class Priority : std::uint8_t {
  kInteractive = 0,  // latency-sensitive user traffic
  kBatch = 1,        // bulk analytical queries
  kBackground = 2,   // maintenance / best-effort scans
};

constexpr std::size_t kNumPriorities = 3;

/// Stable lower-case name ("interactive", "batch", "background").
inline const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBackground:
      return "background";
  }
  return "unknown";
}

/// One k-NN request. The query series is copied in (the caller's buffer
/// is free after Submit returns); length must equal the live index's
/// series length.
struct SearchRequest {
  // ---- wire fields (serialized by net/protocol, same on both paths) ----
  std::vector<float> query;
  std::size_t k = 1;
  double epsilon = 0.0;  // ε-approximation; 0 = exact

  /// Admission priority class (see Priority).
  Priority priority = Priority::kInteractive;

  /// Tenant tag for per-tenant quotas and instruments; empty = the
  /// anonymous tenant (still quota-tracked when quotas are on).
  std::string tenant;

  /// Relative deadline in milliseconds from admission; 0 = none. The
  /// admitting service turns it into the absolute `deadline` below, so
  /// the wire never carries a clock reading.
  double deadline_ms = 0.0;

  /// Opt into work counters (QueryProfile) for this request.
  bool collect_profile = false;

  /// Opt into per-query tracing for this request regardless of the
  /// service's sampling config; the finished trace (span timeline +
  /// work counters) comes back in SearchResponse::trace.
  bool collect_trace = false;

  // ---- in-process only (never serialized) ----

  /// Absolute drop-dead time; requests still queued past it are answered
  /// kDeadlineExpired without running. Default: no deadline. Derived
  /// from deadline_ms at Submit() when unset.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  /// Convenience: sets both the relative wire field and the absolute
  /// in-process deadline from now.
  void SetDeadlineMs(double ms) {
    deadline_ms = ms;
    deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(static_cast<std::int64_t>(ms * 1e3));
  }
};

/// One answer.
struct SearchResponse {
  // ---- wire fields ----
  RequestStatus status = RequestStatus::kOk;
  std::vector<Neighbor> neighbors;      // ascending by distance; kOk only
  double latency_ms = 0.0;              // Submit() → completion
  std::uint64_t index_version = 0;      // which published generation answered
  index::QueryProfile profile;          // filled when collect_profile
                                        // (and for traced queries)

  // ---- in-process only ----

  /// Span timeline of this query; non-null only when the request set
  /// collect_trace. In-process it is the service's own record; a
  /// SofaClient against a v2 server fills it with the decoded wire copy
  /// (span-for-span identical). v1 responses transport rendered text
  /// (obs::FormatTrace), not as this structure.
  std::shared_ptr<const obs::TraceRecord> trace;
};

}  // namespace service
}  // namespace sofa

#endif  // SOFA_SERVICE_REQUEST_H_
