#include "service/search_service.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>
#include <utility>

#include "index/query_engine.h"
#include "service/executor.h"
#include "util/check.h"

namespace sofa {
namespace service {
namespace {

// The insert-buffer scan half of an ingesting query runs as executor
// tasks alongside the tree scatter (one task per non-null buffer), so
// the delta-set work is load-balanced across the same workers instead of
// serializing on the dispatcher thread. These helpers size and fill the
// buffer-task block appended after a query's tree-task block.
std::size_t BufferTaskCount(const IndexSnapshot& snapshot) {
  if (!snapshot.is_ingesting()) {
    return 0;
  }
  std::size_t count = 0;
  for (const auto& buffer : snapshot.buffers->buffers) {
    if (buffer != nullptr) {
      ++count;
    }
  }
  return count;
}

// Fills `tasks[at...]` with one scan task per non-null buffer; each
// task's result/profile slot comes from the parallel arrays at the same
// offset. Returns one past the last filled slot.
std::size_t FillBufferTasks(
    const IndexSnapshot& snapshot, const SearchRequest& request,
    const std::unordered_set<std::uint32_t>* exclude, bool with_deadline,
    std::vector<QueryTask>* tasks, std::size_t at,
    std::vector<std::vector<Neighbor>>* results,
    std::vector<index::QueryProfile>* profiles) {
  const ShardBuffers& buffers = *snapshot.buffers;
  for (std::size_t s = 0; s < buffers.buffers.size(); ++s) {
    if (buffers.buffers[s] == nullptr) {
      continue;
    }
    QueryTask& task = (*tasks)[at];
    task.query = request.query.data();
    task.k = request.k;
    if (with_deadline) {
      task.deadline = request.deadline;
    }
    task.buffer = buffers.buffers[s].get();
    task.buffer_start = buffers.start[s];
    task.exclude = exclude;
    task.result = &(*results)[at];
    task.profile =
        request.collect_profile ? &(*profiles)[at] : nullptr;
    ++at;
  }
  return at;
}

// One consistent tombstone snapshot for a query (or a whole batch): the
// live set can grow concurrently, and tree scatter + buffer scan + merge
// must all filter the same ids. Null when the generation has no delete
// path or nothing is tombstoned — the fast path skips all filtering.
std::shared_ptr<const std::unordered_set<std::uint32_t>> TombstoneViewOf(
    const IndexSnapshot& snapshot) {
  if (!snapshot.is_ingesting() || snapshot.buffers->tombstones == nullptr) {
    return nullptr;
  }
  auto view = snapshot.buffers->tombstones->view();
  if (view->empty()) {
    return nullptr;
  }
  return view;
}

// Per-shard widening for the tree searches of a query whose filter view
// is non-empty: a deleted row still inside shard s's tree can displace
// at most one live candidate from shard s's own list, so each shard
// over-fetches by the tombstones routed to it, not by the global count.
// Must be sampled AFTER TombstoneViewOf (see ShardBuffers); falls back
// to the global view size when the snapshot carries no counts.
std::vector<std::size_t> ShardKExtra(
    const IndexSnapshot& snapshot,
    const std::unordered_set<std::uint32_t>& view) {
  const std::size_t num_shards = snapshot.sharded->num_shards();
  std::vector<std::size_t> extra(num_shards, view.size());
  const auto& counts = snapshot.buffers->tombstone_shard_counts;
  if (counts != nullptr && counts->size() == num_shards) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      extra[s] = (*counts)[s].load(std::memory_order_relaxed);
    }
  }
  return extra;
}

// Span names used by this TU and matched by pointer in StageHistogram —
// every span is begun/allocated with one of these arrays, so identity
// comparison is exact and free.
constexpr char kSpanAdmission[] = "admission";
constexpr char kSpanScatter[] = "scatter";
constexpr char kSpanShardScan[] = "shard_scan";
constexpr char kSpanBufferScan[] = "buffer_scan";
constexpr char kSpanMerge[] = "merge";
constexpr char kSpanSearch[] = "search";

}  // namespace

SearchService::SearchService(std::shared_ptr<const IndexSnapshot> snapshot,
                             ThreadPool* pool, ServiceConfig config)
    : pool_(pool), config_(config), metrics_(config.registry),
      sampler_(config.trace.sample_every),
      slow_log_(config.trace.slow_log_capacity),
      snapshot_(std::move(snapshot)), paused_(config.start_paused) {
  SOFA_CHECK(pool_ != nullptr);
  SOFA_CHECK(snapshot_ != nullptr &&
             (snapshot_->tree != nullptr || snapshot_->sharded != nullptr));
  SOFA_CHECK(config_.max_pending > 0);
  if (config_.max_batch == 0) {
    config_.max_batch = 1;
  }
  obs::Registry* registry = metrics_.registry();
  traces_total_ = registry->GetCounter("sofa_query_traces_total", {},
                                       "Queries that carried a trace");
  slow_queries_total_ =
      registry->GetCounter("sofa_slow_queries_total", {},
                           "Queries recorded in the slow-query log");
  const char* kStage = "sofa_query_stage_ms";
  const char* kStageHelp = "Per-stage time of traced queries (ms)";
  const obs::HistogramOptions stage_options;  // 1 µs .. 100 s
  stage_admission_ = registry->GetHistogram(
      kStage, stage_options, {{"stage", "admission"}}, kStageHelp);
  stage_scatter_ = registry->GetHistogram(
      kStage, stage_options, {{"stage", "scatter"}}, kStageHelp);
  stage_shard_scan_ = registry->GetHistogram(
      kStage, stage_options, {{"stage", "shard_scan"}}, kStageHelp);
  stage_buffer_scan_ = registry->GetHistogram(
      kStage, stage_options, {{"stage", "buffer_scan"}}, kStageHelp);
  stage_merge_ = registry->GetHistogram(
      kStage, stage_options, {{"stage", "merge"}}, kStageHelp);
  stage_search_ = registry->GetHistogram(
      kStage, stage_options, {{"stage", "search"}}, kStageHelp);
  // Hardware-counter attribution of the executor-run stages. Counts per
  // scan span range from a handful (tiny buffers) to billions of cycles,
  // hence the wide geometry.
  obs::HistogramOptions perf_options;
  perf_options.min_value = 1.0;
  perf_options.max_value = 1e12;
  perf_options.buckets_per_decade = 5;
  struct {
    StagePerfHistograms* slot;
    const char* stage;
  } const perf_stages[] = {{&perf_shard_scan_, "shard_scan"},
                           {&perf_buffer_scan_, "buffer_scan"},
                           {&perf_search_, "search"}};
  for (const auto& entry : perf_stages) {
    entry.slot->cycles = registry->GetHistogram(
        "sofa_query_stage_cycles", perf_options, {{"stage", entry.stage}},
        "CPU cycles per traced stage execution (rdtsc fallback when "
        "perf_event_open is unavailable)");
    entry.slot->instructions = registry->GetHistogram(
        "sofa_query_stage_instructions", perf_options,
        {{"stage", entry.stage}},
        "Retired instructions per traced stage execution");
    entry.slot->llc_misses = registry->GetHistogram(
        "sofa_query_stage_llc_misses", perf_options, {{"stage", entry.stage}},
        "Last-level-cache misses per traced stage execution");
    entry.slot->stalled_cycles = registry->GetHistogram(
        "sofa_query_stage_stalled_cycles", perf_options,
        {{"stage", entry.stage}},
        "Backend-stalled cycles per traced stage execution");
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

SearchService::~SearchService() { Shutdown(); }

double SearchService::ElapsedMs(
    std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

std::future<SearchResponse> SearchService::Submit(SearchRequest request) {
  metrics_.RecordSubmitted();
  PendingRequest pending;
  pending.request = std::move(request);
  pending.submit_time = std::chrono::steady_clock::now();
  // Wire clients express deadlines as the relative deadline_ms field;
  // derive the absolute in-process deadline at admission when the caller
  // did not set one directly (the wire never carries a clock reading).
  if (pending.request.deadline_ms > 0.0 &&
      pending.request.deadline ==
          std::chrono::steady_clock::time_point::max()) {
    pending.request.deadline =
        pending.submit_time +
        std::chrono::microseconds(
            static_cast<std::int64_t>(pending.request.deadline_ms * 1e3));
  }
  // Tracing decision: explicit opt-in, trace-everything (slow-query log
  // armed), or every Nth by the sampler. When all three are off this is
  // one branch + one relaxed load — the zero-cost path.
  if (pending.request.collect_trace || config_.trace.slow_query_ms > 0.0 ||
      sampler_.ShouldSample()) {
    pending.trace.reset(new obs::QueryTrace(config_.trace.max_spans));
    pending.query_id =
        next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    pending.admission_span = pending.trace->BeginSpan(kSpanAdmission);
  }
  std::future<SearchResponse> future = pending.promise.get_future();
  RequestStatus shed = RequestStatus::kOk;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      shed = RequestStatus::kShutdown;
    } else if (QueuedCountLocked() >= config_.max_pending) {
      shed = RequestStatus::kRejected;
    } else if (config_.tenant_max_in_flight > 0 &&
               [&] {
                 auto it = tenant_in_flight_.find(pending.request.tenant);
                 return it != tenant_in_flight_.end() &&
                        it->second >= config_.tenant_max_in_flight;
               }()) {
      shed = RequestStatus::kQuotaExceeded;
    } else {
      if (config_.tenant_max_in_flight > 0) {
        ++tenant_in_flight_[pending.request.tenant];
      }
      const std::size_t cls =
          std::min(static_cast<std::size_t>(pending.request.priority),
                   kNumPriorities - 1);
      queues_[cls].push_back(std::move(pending));
      work_cv_.notify_one();
      return future;
    }
  }
  // Shed without running: stopped, admission queue full, or the tenant's
  // in-flight quota is spent.
  SearchResponse response;
  response.status = shed;
  if (shed == RequestStatus::kQuotaExceeded) {
    metrics_.RecordQuotaRejected();
  } else {
    metrics_.RecordRejected();
  }
  pending.promise.set_value(std::move(response));
  return future;
}

SearchResponse SearchService::Search(SearchRequest request) {
  return Submit(std::move(request)).get();
}

std::uint64_t SearchService::Publish(
    std::shared_ptr<const IndexSnapshot> snapshot) {
  SOFA_CHECK(snapshot != nullptr &&
             (snapshot->tree != nullptr || snapshot->sharded != nullptr));
  std::uint64_t version;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_ = std::move(snapshot);
    version = ++version_;
  }
  metrics_.RecordSwap();
  return version;
}

std::shared_ptr<const IndexSnapshot> SearchService::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_;
}

std::uint64_t SearchService::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

void SearchService::Pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void SearchService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void SearchService::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] {
    return stopping_ || (QueuedCountLocked() == 0 && !executing_);
  });
}

void SearchService::Shutdown() {
  // Serialized: a second caller (e.g. the destructor racing an explicit
  // Shutdown) blocks here until the first has joined the dispatcher, so
  // nobody returns while the dispatcher thread is still alive.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  std::deque<PendingRequest> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (std::size_t cls = 0; cls < kNumPriorities; ++cls) {
      for (PendingRequest& pending : queues_[cls]) {
        ReleaseTenantLocked(pending.request.tenant);
        drained.push_back(std::move(pending));
      }
      queues_[cls].clear();
    }
  }
  work_cv_.notify_all();
  drain_cv_.notify_all();
  for (PendingRequest& pending : drained) {
    SearchResponse response;
    response.status = RequestStatus::kShutdown;
    response.latency_ms = ElapsedMs(pending.submit_time);
    metrics_.RecordRejected();
    pending.promise.set_value(std::move(response));
  }
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  }
}

MetricsSnapshot SearchService::Metrics() const { return metrics_.Snapshot(); }

std::size_t SearchService::PendingCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return QueuedCountLocked();
}

std::size_t SearchService::QueuedCountLocked() const {
  std::size_t total = 0;
  for (std::size_t cls = 0; cls < kNumPriorities; ++cls) {
    total += queues_[cls].size();
  }
  return total;
}

void SearchService::ReleaseTenantLocked(const std::string& tenant) {
  if (config_.tenant_max_in_flight == 0) {
    return;
  }
  auto it = tenant_in_flight_.find(tenant);
  if (it != tenant_in_flight_.end() && --(it->second) == 0) {
    tenant_in_flight_.erase(it);
  }
}

// Pops up to max_batch requests in strict priority order — except for a
// small per-round reserve granted to waiting lower classes, so a steady
// interactive flood cannot starve batch/background forever. The batch
// comes out interactive-first, which also makes latency-mode execution
// (sequential within the batch) serve interactive requests first.
void SearchService::FillBatchLocked(std::vector<PendingRequest>* batch) {
  const std::size_t max_batch = config_.max_batch;
  const std::size_t reserve_cap =
      config_.priority_reserve != 0
          ? config_.priority_reserve
          : std::max<std::size_t>(1, max_batch / 8);
  const std::size_t lower_waiting = queues_[1].size() + queues_[2].size();
  std::size_t reserved = std::min(reserve_cap, lower_waiting);
  if (!queues_[0].empty()) {
    // Never let the reserve consume the whole round while interactive
    // work waits.
    reserved = std::min(reserved, max_batch > 1 ? max_batch - 1 : 0);
  }
  // Strict priority for the unreserved budget; leftover budget (e.g. a
  // short interactive queue) spills down to the lower classes naturally.
  std::size_t budget = max_batch - reserved;
  for (std::size_t cls = 0; cls < kNumPriorities; ++cls) {
    while (budget > 0 && !queues_[cls].empty()) {
      batch->push_back(std::move(queues_[cls].front()));
      queues_[cls].pop_front();
      --budget;
    }
  }
  // The reserved slots go to whatever lower-class work is still waiting,
  // batch before background.
  budget += reserved;
  for (std::size_t cls = 1; cls < kNumPriorities; ++cls) {
    while (budget > 0 && !queues_[cls].empty()) {
      batch->push_back(std::move(queues_[cls].front()));
      queues_[cls].pop_front();
      --budget;
    }
  }
}

void SearchService::DispatcherLoop() {
  while (true) {
    std::vector<PendingRequest> batch;
    std::shared_ptr<const IndexSnapshot> snapshot;
    std::uint64_t version = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && QueuedCountLocked() > 0);
      });
      if (stopping_) {
        return;  // Shutdown() fails whatever is still queued
      }
      batch.reserve(std::min(QueuedCountLocked(), config_.max_batch));
      FillBatchLocked(&batch);
      snapshot = snapshot_;  // the generation this whole batch runs against
      version = version_;
      executing_ = true;
    }
    ExecuteBatch(&batch, *snapshot, version);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      executing_ = false;
      if (QueuedCountLocked() == 0) {
        drain_cv_.notify_all();
      }
    }
  }
}

void SearchService::ExecuteBatch(std::vector<PendingRequest>* batch,
                                 const IndexSnapshot& snapshot,
                                 std::uint64_t version) {
  const std::size_t series_length = snapshot.series_length();
  const auto now = std::chrono::steady_clock::now();

  // Admission-time bookkeeping per request; expired/malformed requests are
  // answered without touching the engine.
  std::vector<SearchResponse> responses(batch->size());
  std::vector<std::size_t> runnable;
  runnable.reserve(batch->size());
  for (std::size_t i = 0; i < batch->size(); ++i) {
    const SearchRequest& request = (*batch)[i].request;
    responses[i].index_version = version;
    if ((*batch)[i].trace != nullptr) {
      // Queue wait ends when the batch picks the request up.
      (*batch)[i].trace->EndSpan((*batch)[i].admission_span);
    }
    if (request.deadline < now) {
      responses[i].status = RequestStatus::kDeadlineExpired;
      metrics_.RecordExpired();
    } else if (request.query.size() != series_length) {
      responses[i].status = RequestStatus::kInvalidArgument;
      metrics_.RecordInvalid();
    } else {
      runnable.push_back(i);
    }
  }

  if (!runnable.empty()) {
    const bool latency_mode = runnable.size() <= config_.latency_mode_threshold;
    if (latency_mode) {
      // One tombstone snapshot for the whole batch (every request here
      // was submitted before the batch started, so batch-time visibility
      // satisfies the delete contract) — recomputing per request would
      // copy the set once per query under concurrent deletes.
      std::shared_ptr<const std::unordered_set<std::uint32_t>> tombstones;
      std::vector<std::size_t> k_extra;
      if (snapshot.is_sharded()) {
        tombstones = TombstoneViewOf(snapshot);
        if (tombstones != nullptr) {
          k_extra = ShardKExtra(snapshot, *tombstones);
        }
      }
      for (const std::size_t i : runnable) {
        const SearchRequest& request = (*batch)[i].request;
        // A request can expire while the queries before it in this batch
        // run; re-check right before execution.
        if (request.deadline < std::chrono::steady_clock::now()) {
          responses[i].status = RequestStatus::kDeadlineExpired;
          metrics_.RecordExpired();
          continue;
        }
        metrics_.RecordLatencyModeQuery();
        obs::QueryTrace* trace = (*batch)[i].trace.get();
        // Traced queries always collect work counters — the trace
        // attaches them — so the profile lands in the response either way.
        index::QueryProfile* profile = request.collect_profile ||
                                               trace != nullptr
                                           ? &responses[i].profile
                                           : nullptr;
        if (snapshot.is_sharded()) {
          // Intra-query parallelism of a sharded generation = one worker
          // per shard task plus one per insert-buffer scan when the
          // generation is ingesting — the whole query fans through a
          // single executor batch and gathers in the exact merge.
          // Scatter on the service's pool, not the pool the index was
          // built with (which may be a short-lived builder pool).
          const shard::ShardedIndex& sharded = *snapshot.sharded;
          const std::size_t num_shards = sharded.num_shards();
          const std::size_t buffer_tasks = BufferTaskCount(snapshot);
          const std::size_t total_tasks = num_shards + buffer_tasks;
          std::vector<std::vector<Neighbor>> results(total_tasks);
          std::vector<index::QueryProfile> profiles(
              profile != nullptr ? total_tasks : 0);
          std::vector<QueryTask> tasks(total_tasks);
          const int scatter_span =
              trace != nullptr ? trace->BeginSpan(kSpanScatter) : -1;
          for (std::size_t s = 0; s < num_shards; ++s) {
            QueryTask& task = tasks[s];
            task.index = sharded.shard(s).tree.get();
            task.query = request.query.data();
            task.k = request.k + (k_extra.empty() ? 0 : k_extra[s]);
            task.epsilon = request.epsilon;
            task.result = &results[s];
            task.profile = profile != nullptr ? &profiles[s] : nullptr;
            if (trace != nullptr) {
              task.trace = trace;
              task.span = trace->AllocateSpan(kSpanShardScan, scatter_span);
            }
          }
          if (buffer_tasks > 0) {
            FillBufferTasks(snapshot, request, tombstones.get(),
                            /*with_deadline=*/false, &tasks, num_shards,
                            &results, &profiles);
            if (trace != nullptr) {
              for (std::size_t t = num_shards; t < total_tasks; ++t) {
                tasks[t].trace = trace;
                tasks[t].span =
                    trace->AllocateSpan(kSpanBufferScan, scatter_span);
                // FillBufferTasks only wires profiles for collect_profile
                // requests; traced queries want the buffer work counted
                // too.
                if (tasks[t].profile == nullptr) {
                  tasks[t].profile = &profiles[t];
                }
              }
            }
          }
          RunTaskBatch(&tasks, pool_, config_.num_threads);
          if (trace != nullptr) {
            trace->EndSpan(scatter_span);
          }
          if (profile != nullptr) {
            for (const index::QueryProfile& task_profile : profiles) {
              profile->Merge(task_profile);
            }
          }
          std::vector<std::vector<Neighbor>> per_shard(
              std::make_move_iterator(results.begin()),
              std::make_move_iterator(
                  results.begin() + static_cast<std::ptrdiff_t>(num_shards)));
          std::vector<std::vector<Neighbor>> extras;
          for (std::size_t t = num_shards; t < total_tasks; ++t) {
            if (!results[t].empty()) {
              extras.push_back(std::move(results[t]));
            }
          }
          std::uint64_t filtered = 0;
          const int merge_span =
              trace != nullptr ? trace->BeginSpan(kSpanMerge) : -1;
          responses[i].neighbors = sharded.MergeTopK(
              per_shard, request.k, std::move(extras), tombstones.get(),
              &filtered);
          if (trace != nullptr) {
            trace->EndSpan(merge_span);
          }
          if (profile != nullptr) {
            profile->candidates_filtered += filtered;
          }
        } else {
          const int search_span =
              trace != nullptr ? trace->BeginSpan(kSpanSearch) : -1;
          const index::QueryEngine engine(snapshot.tree);
          responses[i].neighbors =
              engine.Search(request.query.data(), request.k, request.epsilon,
                            profile, config_.num_threads);
          if (trace != nullptr) {
            trace->EndSpan(search_span);
          }
        }
      }
    } else if (snapshot.is_sharded()) {
      ExecuteShardedThroughput(snapshot, batch, runnable, &responses);
    } else {
      std::vector<QueryTask> tasks(runnable.size());
      for (std::size_t t = 0; t < runnable.size(); ++t) {
        const std::size_t i = runnable[t];
        const SearchRequest& request = (*batch)[i].request;
        obs::QueryTrace* trace = (*batch)[i].trace.get();
        tasks[t].query = request.query.data();
        tasks[t].k = request.k;
        tasks[t].epsilon = request.epsilon;
        tasks[t].deadline = request.deadline;
        tasks[t].profile = request.collect_profile || trace != nullptr
                               ? &responses[i].profile
                               : nullptr;
        tasks[t].result = &responses[i].neighbors;
        if (trace != nullptr) {
          tasks[t].trace = trace;
          tasks[t].span = trace->AllocateSpan(kSpanSearch);
        }
      }
      RunThroughputBatch(*snapshot.tree, &tasks, pool_, config_.num_threads);
      metrics_.RecordThroughputBatch(runnable.size());
      for (std::size_t t = 0; t < runnable.size(); ++t) {
        if (tasks[t].expired) {
          responses[runnable[t]].status = RequestStatus::kDeadlineExpired;
          metrics_.RecordExpired();
        }
      }
    }
  }

  FinishBatch(batch, &responses);
}

void SearchService::FinishBatch(std::vector<PendingRequest>* batch,
                                std::vector<SearchResponse>* responses) {
  if (config_.tenant_max_in_flight > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (PendingRequest& pending : *batch) {
      ReleaseTenantLocked(pending.request.tenant);
    }
  }
  for (std::size_t i = 0; i < batch->size(); ++i) {
    PendingRequest& pending = (*batch)[i];
    SearchResponse& response = (*responses)[i];
    response.latency_ms = ElapsedMs(pending.submit_time);
    if (response.status == RequestStatus::kOk) {
      metrics_.RecordCompleted(
          response.latency_ms,
          pending.request.collect_profile ? &response.profile : nullptr,
          pending.request.priority);
    }
    if (pending.trace != nullptr) {
      FinishTrace(&pending, &response);
    }
    pending.promise.set_value(std::move(response));
  }
}

obs::Histogram* SearchService::StageHistogram(const char* span_name) {
  if (span_name == kSpanAdmission) return stage_admission_;
  if (span_name == kSpanScatter) return stage_scatter_;
  if (span_name == kSpanShardScan) return stage_shard_scan_;
  if (span_name == kSpanBufferScan) return stage_buffer_scan_;
  if (span_name == kSpanMerge) return stage_merge_;
  if (span_name == kSpanSearch) return stage_search_;
  return nullptr;
}

const SearchService::StagePerfHistograms* SearchService::StagePerf(
    const char* span_name) const {
  if (span_name == kSpanShardScan) return &perf_shard_scan_;
  if (span_name == kSpanBufferScan) return &perf_buffer_scan_;
  if (span_name == kSpanSearch) return &perf_search_;
  return nullptr;
}

void SearchService::FinishTrace(PendingRequest* pending,
                                SearchResponse* response) {
  obs::QueryTrace& trace = *pending->trace;
  const index::QueryProfile& profile = response->profile;
  trace.AddCounter("nodes_visited", profile.nodes_visited);
  trace.AddCounter("nodes_pruned", profile.nodes_pruned);
  trace.AddCounter("leaves_collected", profile.leaves_collected);
  trace.AddCounter("leaves_abandoned", profile.leaves_abandoned);
  trace.AddCounter("series_lbd_checked", profile.series_lbd_checked);
  trace.AddCounter("series_lbd_pruned", profile.series_lbd_pruned);
  trace.AddCounter("series_ed_computed", profile.series_ed_computed);
  trace.AddCounter("candidates_filtered", profile.candidates_filtered);
  trace.AddCounter("rowq_checked", profile.rowq_checked);
  trace.AddCounter("rowq_pruned", profile.rowq_pruned);
  const bool expired =
      response->status == RequestStatus::kDeadlineExpired;
  obs::TraceRecord record =
      trace.Finish(pending->query_id, response->latency_ms, expired);
  traces_total_->Add();
  for (const obs::TraceSpan& span : record.spans) {
    obs::Histogram* histogram = StageHistogram(span.name);
    if (histogram != nullptr) {
      histogram->Record(std::max(0.0, span.end_ms - span.start_ms));
    }
    if (span.perf.Any()) {
      const StagePerfHistograms* perf = StagePerf(span.name);
      if (perf != nullptr) {
        // Fallback samples (hardware == false) carry a meaningful tsc
        // cycle delta but zeros elsewhere — the zeros stay out of the
        // instruction/cache histograms so they never skew percentiles.
        perf->cycles->Record(static_cast<double>(span.perf.cycles));
        if (span.perf.hardware) {
          perf->instructions->Record(
              static_cast<double>(span.perf.instructions));
          perf->llc_misses->Record(static_cast<double>(span.perf.llc_misses));
          perf->stalled_cycles->Record(
              static_cast<double>(span.perf.stalled_cycles));
        }
      }
    }
  }
  if (config_.trace.slow_query_ms > 0.0 &&
      (expired || response->latency_ms >= config_.trace.slow_query_ms)) {
    slow_queries_total_->Add();
    slow_log_.Push(record);  // copy — the caller may want the record too
  }
  if (pending->request.collect_trace) {
    response->trace =
        std::make_shared<const obs::TraceRecord>(std::move(record));
  }
}

// Throughput mode over a sharded generation: the whole batch flattens to
// (query × shard) single-threaded tasks — plus one (query × buffer) scan
// task per non-null insert buffer when the generation is ingesting — so
// the executor load-balances the scatter of all queries at once; then
// each query's per-shard heaps and buffer answers are gathered into its
// exact global top-k.
void SearchService::ExecuteShardedThroughput(
    const IndexSnapshot& snapshot, std::vector<PendingRequest>* batch,
    const std::vector<std::size_t>& runnable,
    std::vector<SearchResponse>* responses) {
  const shard::ShardedIndex& sharded = *snapshot.sharded;
  const std::size_t num_shards = sharded.num_shards();
  // One tombstone snapshot for the whole batch (it runs against one
  // generation); each shard task over-fetches by that shard's resident
  // tombstone count so the per-query merges can filter without losing
  // live candidates.
  const auto tombstones = TombstoneViewOf(snapshot);
  std::vector<std::size_t> k_extra;
  if (tombstones != nullptr) {
    k_extra = ShardKExtra(snapshot, *tombstones);
  }
  // Task layout: the (query × shard) tree block first, then one
  // per-query buffer block — every slot of `results`/`profiles` lines up
  // with its task index.
  const std::size_t tree_tasks = runnable.size() * num_shards;
  const std::size_t buffer_tasks = BufferTaskCount(snapshot);
  const std::size_t total_tasks =
      tree_tasks + runnable.size() * buffer_tasks;
  std::vector<std::vector<Neighbor>> results(total_tasks);
  std::vector<index::QueryProfile> profiles(total_tasks);
  std::vector<QueryTask> tasks(total_tasks);
  // One scatter span per traced query: it brackets the shared executor
  // run, inside which the per-task shard/buffer spans get stamped.
  std::vector<int> scatter_spans(runnable.size(), -1);
  for (std::size_t q = 0; q < runnable.size(); ++q) {
    const SearchRequest& request = (*batch)[runnable[q]].request;
    obs::QueryTrace* trace = (*batch)[runnable[q]].trace.get();
    const bool want_profile = request.collect_profile || trace != nullptr;
    if (trace != nullptr) {
      scatter_spans[q] = trace->BeginSpan(kSpanScatter);
    }
    for (std::size_t s = 0; s < num_shards; ++s) {
      QueryTask& task = tasks[q * num_shards + s];
      task.index = sharded.shard(s).tree.get();
      task.query = request.query.data();
      task.k = request.k + (k_extra.empty() ? 0 : k_extra[s]);
      task.epsilon = request.epsilon;
      task.deadline = request.deadline;
      task.result = &results[q * num_shards + s];
      task.profile =
          want_profile ? &profiles[q * num_shards + s] : nullptr;
      if (trace != nullptr) {
        task.trace = trace;
        task.span = trace->AllocateSpan(kSpanShardScan, scatter_spans[q]);
      }
    }
    if (buffer_tasks > 0) {
      FillBufferTasks(snapshot, request, tombstones.get(),
                      /*with_deadline=*/true, &tasks,
                      tree_tasks + q * buffer_tasks, &results, &profiles);
      if (trace != nullptr) {
        for (std::size_t b = 0; b < buffer_tasks; ++b) {
          QueryTask& task = tasks[tree_tasks + q * buffer_tasks + b];
          task.trace = trace;
          task.span = trace->AllocateSpan(kSpanBufferScan, scatter_spans[q]);
          if (task.profile == nullptr) {
            task.profile = &profiles[tree_tasks + q * buffer_tasks + b];
          }
        }
      }
    }
  }
  RunTaskBatch(&tasks, pool_, config_.num_threads);
  for (std::size_t q = 0; q < runnable.size(); ++q) {
    if ((*batch)[runnable[q]].trace != nullptr) {
      (*batch)[runnable[q]].trace->EndSpan(scatter_spans[q]);
    }
  }
  metrics_.RecordThroughputBatch(runnable.size());

  for (std::size_t q = 0; q < runnable.size(); ++q) {
    SearchResponse& response = (*responses)[runnable[q]];
    const SearchRequest& request = (*batch)[runnable[q]].request;
    obs::QueryTrace* trace = (*batch)[runnable[q]].trace.get();
    const bool want_profile = request.collect_profile || trace != nullptr;
    // A query whose scatter partially expired has no exact answer — fail
    // it whole rather than merge a subset of its tree/buffer sources.
    bool expired = false;
    for (std::size_t s = 0; s < num_shards; ++s) {
      expired = expired || tasks[q * num_shards + s].expired;
    }
    for (std::size_t b = 0; b < buffer_tasks; ++b) {
      expired = expired || tasks[tree_tasks + q * buffer_tasks + b].expired;
    }
    if (expired) {
      response.status = RequestStatus::kDeadlineExpired;
      metrics_.RecordExpired();
      continue;
    }
    std::vector<std::vector<Neighbor>> per_shard(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      per_shard[s] = std::move(results[q * num_shards + s]);
      if (want_profile) {
        response.profile.Merge(profiles[q * num_shards + s]);
      }
    }
    std::vector<std::vector<Neighbor>> extras;
    for (std::size_t b = 0; b < buffer_tasks; ++b) {
      const std::size_t t = tree_tasks + q * buffer_tasks + b;
      if (want_profile) {
        response.profile.Merge(profiles[t]);
      }
      if (!results[t].empty()) {
        extras.push_back(std::move(results[t]));
      }
    }
    std::uint64_t filtered = 0;
    const int merge_span =
        trace != nullptr ? trace->BeginSpan(kSpanMerge) : -1;
    response.neighbors = sharded.MergeTopK(per_shard, request.k,
                                           std::move(extras),
                                           tombstones.get(), &filtered);
    if (trace != nullptr) {
      trace->EndSpan(merge_span);
    }
    if (want_profile) {
      response.profile.candidates_filtered += filtered;
    }
  }
}

}  // namespace service
}  // namespace sofa
