// Serving metrics: what a production deployment watches while the engine
// answers traffic — admission counts, a latency histogram (p50/p95/p99),
// QPS, scheduling-mode decisions, hot-swap count, and the merged
// QueryProfile pruning counters of profiled queries.

#ifndef SOFA_SERVICE_METRICS_H_
#define SOFA_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "index/tree_index.h"
#include "util/histogram.h"
#include "util/timer.h"

namespace sofa {
namespace service {

/// Point-in-time copy of the collector, safe to read after the fact.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;   // admission attempts
  std::uint64_t completed = 0;   // answered queries
  std::uint64_t rejected = 0;    // bounced at admission (queue full/shutdown)
  std::uint64_t expired = 0;     // dropped at dispatch (deadline passed)
  std::uint64_t invalid = 0;     // malformed (query length mismatch)
  std::uint64_t swaps = 0;       // index generations published

  std::uint64_t latency_queries = 0;     // ran with intra-query parallelism
  std::uint64_t throughput_batches = 0;  // cross-query parallel batches
  std::uint64_t throughput_queries = 0;  // queries inside those batches

  double uptime_seconds = 0.0;
  double qps = 0.0;  // completed / uptime

  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  /// Merged pruning counters of all profile-opted queries.
  index::QueryProfile profile;
};

/// Thread-safe aggregation; Record* calls are cheap enough for the
/// dispatch/completion path (atomics + lock-free histogram; only the
/// optional profile merge takes a mutex).
class MetricsCollector {
 public:
  MetricsCollector();

  void RecordSubmitted() { Bump(&submitted_); }
  void RecordRejected() { Bump(&rejected_); }
  void RecordExpired() { Bump(&expired_); }
  void RecordInvalid() { Bump(&invalid_); }
  void RecordSwap() { Bump(&swaps_); }
  void RecordLatencyModeQuery() { Bump(&latency_queries_); }
  void RecordThroughputBatch(std::uint64_t batch_size);

  /// One answered query: end-to-end latency plus (optionally) its merged
  /// work counters.
  void RecordCompleted(double latency_ms,
                       const index::QueryProfile* profile = nullptr);

  MetricsSnapshot Snapshot() const;

 private:
  static void Bump(std::atomic<std::uint64_t>* counter) {
    counter->fetch_add(1, std::memory_order_relaxed);
  }

  WallTimer uptime_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> latency_queries_{0};
  std::atomic<std::uint64_t> throughput_batches_{0};
  std::atomic<std::uint64_t> throughput_queries_{0};
  LogHistogram latency_ms_;  // 1 µs .. 100 s

  mutable std::mutex profile_mutex_;
  index::QueryProfile profile_;
};

}  // namespace service
}  // namespace sofa

#endif  // SOFA_SERVICE_METRICS_H_
