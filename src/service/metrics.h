// Serving metrics: what a production deployment watches while the engine
// answers traffic — admission counts, a latency histogram (p50/p95/p99),
// QPS, scheduling-mode decisions, hot-swap count, and the merged
// QueryProfile pruning counters of profiled queries.
//
// Since the unified observability layer (src/obs/), the collector is a
// facade over registry instruments: every Record* call lands in a named
// obs::Counter / obs::Histogram, so the same numbers the Snapshot() API
// reports are exportable through obs::RenderPrometheus / RenderJson. By
// default each collector owns a private registry (test isolation); pass
// a shared registry through ServiceConfig to co-expose service, ingest,
// and persist metrics from one endpoint.

#ifndef SOFA_SERVICE_METRICS_H_
#define SOFA_SERVICE_METRICS_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "index/tree_index.h"
#include "obs/registry.h"
#include "service/request.h"
#include "util/timer.h"

namespace sofa {
namespace service {

/// Point-in-time copy of the collector, safe to read after the fact.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;   // admission attempts
  std::uint64_t completed = 0;   // answered queries
  std::uint64_t rejected = 0;    // bounced at admission (queue full/shutdown)
  std::uint64_t quota_rejected = 0;  // bounced at the per-tenant quota
  std::uint64_t expired = 0;     // dropped at dispatch (deadline passed)
  std::uint64_t invalid = 0;     // malformed (query length mismatch)
  std::uint64_t swaps = 0;       // index generations published

  /// Completed queries per admission priority class (index = Priority).
  std::uint64_t completed_by_priority[kNumPriorities] = {0, 0, 0};

  std::uint64_t latency_queries = 0;     // ran with intra-query parallelism
  std::uint64_t throughput_batches = 0;  // cross-query parallel batches
  std::uint64_t throughput_queries = 0;  // queries inside those batches

  double uptime_seconds = 0.0;
  double qps = 0.0;  // completed / uptime

  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  /// Merged pruning counters of all profile-opted queries.
  index::QueryProfile profile;
};

/// Thread-safe aggregation; Record* calls are cheap enough for the
/// dispatch/completion path (lock-free registry instruments; only the
/// optional profile merge takes a mutex).
class MetricsCollector {
 public:
  /// Registers the service instruments into `registry`; with nullptr the
  /// collector owns a private registry (per-instance semantics, as every
  /// existing test expects).
  explicit MetricsCollector(obs::Registry* registry = nullptr);
  ~MetricsCollector();

  MetricsCollector(const MetricsCollector&) = delete;
  MetricsCollector& operator=(const MetricsCollector&) = delete;

  void RecordSubmitted() { submitted_->Add(); }
  void RecordRejected() { rejected_->Add(); }
  void RecordQuotaRejected() { quota_rejected_->Add(); }
  void RecordExpired() { expired_->Add(); }
  void RecordInvalid() { invalid_->Add(); }
  void RecordSwap() { swaps_->Add(); }
  void RecordLatencyModeQuery() { latency_queries_->Add(); }
  void RecordThroughputBatch(std::uint64_t batch_size);

  /// One answered query: end-to-end latency (overall + per its priority
  /// class) plus (optionally) its merged work counters.
  void RecordCompleted(double latency_ms,
                       const index::QueryProfile* profile = nullptr,
                       Priority priority = Priority::kInteractive);

  MetricsSnapshot Snapshot() const;

  /// The registry the instruments live in (owned or shared).
  obs::Registry* registry() const { return registry_; }

 private:
  void SyncDerived();  // collect hook: uptime/qps gauges, profile counters

  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;

  WallTimer uptime_;
  obs::Counter* submitted_;
  obs::Counter* completed_;
  obs::Counter* rejected_;
  obs::Counter* quota_rejected_;
  obs::Counter* expired_;
  obs::Counter* invalid_;
  obs::Counter* swaps_;
  obs::Counter* latency_queries_;
  obs::Counter* throughput_batches_;
  obs::Counter* throughput_queries_;
  obs::Histogram* latency_ms_;  // 1 µs .. 100 s
  // Per admission priority class: completion count + latency histogram
  // (labeled {priority="interactive"|"batch"|"background"}).
  obs::Counter* completed_by_priority_[kNumPriorities];
  obs::Histogram* latency_by_priority_[kNumPriorities];
  obs::Gauge* uptime_gauge_;
  obs::Gauge* qps_gauge_;
  obs::Counter* profile_counters_[10];
  // Dedicated compressed-tier instruments (sofa_query_rowq_*): monotonic
  // across profiled completions, independent of the Set()-style sync of
  // the labeled profile counters above.
  obs::Counter* rowq_checked_total_;
  obs::Counter* rowq_pruned_total_;
  std::uint64_t hook_id_;

  mutable std::mutex profile_mutex_;
  index::QueryProfile profile_;
};

}  // namespace service
}  // namespace sofa

#endif  // SOFA_SERVICE_METRICS_H_
