// The unit of index hot-swapping: an immutable bundle of everything one
// published index generation needs to stay alive while queries run
// against it.
//
// SearchService publishes snapshots behind a std::shared_ptr; every batch
// of queries acquires the pointer once and holds it for the duration of
// execution, so a Publish() of a rebuilt or freshly LoadIndex-ed index
// never invalidates an in-flight query — the old generation is destroyed
// when its last running query drops the reference.
//
// A generation is either a single TreeIndex (`tree`) or a sharded one
// (`sharded`), never both: a sharded index is swappable exactly like a
// single one, and a derived sharded generation (one shard rebuilt or
// replaced) republishes through the same path.

#ifndef SOFA_SERVICE_SNAPSHOT_H_
#define SOFA_SERVICE_SNAPSHOT_H_

#include <memory>
#include <utility>

#include "core/dataset.h"
#include "index/serialization.h"
#include "index/tree_index.h"
#include "shard/sharded_index.h"

namespace sofa {
namespace service {

/// One published index generation. Exactly one of `tree` and `sharded` is
/// set; the remaining members are optional keep-alive handles for
/// whatever parts of the generation the snapshot owns (a borrowed index
/// leaves them empty — the caller then guarantees the lifetime instead;
/// a ShardedIndex always keeps its own parts alive).
struct IndexSnapshot {
  std::shared_ptr<const Dataset> data;
  std::unique_ptr<quant::SummaryScheme> scheme;
  std::unique_ptr<index::TreeIndex> owned_tree;
  const index::TreeIndex* tree = nullptr;
  std::shared_ptr<const shard::ShardedIndex> sharded;

  bool is_sharded() const { return sharded != nullptr; }

  /// Series length queries against this generation must have.
  std::size_t series_length() const {
    return sharded != nullptr ? sharded->length() : tree->data().length();
  }
};

/// Wraps an externally owned index (the common case for benches and tests:
/// index, scheme and dataset outlive the service).
inline std::shared_ptr<const IndexSnapshot> WrapIndex(
    const index::TreeIndex* tree) {
  auto snapshot = std::make_shared<IndexSnapshot>();
  snapshot->tree = tree;
  return snapshot;
}

/// Wraps a sharded index; the ShardedIndex shares ownership of its shards,
/// so the snapshot needs no further keep-alive handles.
inline std::shared_ptr<const IndexSnapshot> WrapShardedIndex(
    std::shared_ptr<const shard::ShardedIndex> sharded) {
  auto snapshot = std::make_shared<IndexSnapshot>();
  snapshot->sharded = std::move(sharded);
  return snapshot;
}

/// Takes ownership of a snapshot's parts — e.g. a freshly built index
/// generation. Any handle may be null except `tree`.
inline std::shared_ptr<const IndexSnapshot> MakeSnapshot(
    std::shared_ptr<const Dataset> data,
    std::unique_ptr<quant::SummaryScheme> scheme,
    std::unique_ptr<index::TreeIndex> tree) {
  auto snapshot = std::make_shared<IndexSnapshot>();
  snapshot->data = std::move(data);
  snapshot->scheme = std::move(scheme);
  snapshot->owned_tree = std::move(tree);
  snapshot->tree = snapshot->owned_tree.get();
  return snapshot;
}

/// Adopts the result of index::LoadIndex (scheme + tree), optionally with
/// a keep-alive handle on the collection it was loaded against — the
/// serialization → hot-swap path.
inline std::shared_ptr<const IndexSnapshot> AdoptLoadedIndex(
    index::LoadedIndex loaded, std::shared_ptr<const Dataset> data = nullptr) {
  return MakeSnapshot(std::move(data), std::move(loaded.scheme),
                      std::move(loaded.tree));
}

}  // namespace service
}  // namespace sofa

#endif  // SOFA_SERVICE_SNAPSHOT_H_
