// The unit of index hot-swapping: an immutable bundle of everything one
// published index generation needs to stay alive while queries run
// against it.
//
// SearchService publishes snapshots behind a std::shared_ptr; every batch
// of queries acquires the pointer once and holds it for the duration of
// execution, so a Publish() of a rebuilt or freshly LoadIndex-ed index
// never invalidates an in-flight query — the old generation is destroyed
// when its last running query drops the reference.
//
// A generation is either a single TreeIndex (`tree`) or a sharded one
// (`sharded`), never both: a sharded index is swappable exactly like a
// single one, and a derived sharded generation (one shard rebuilt or
// replaced) republishes through the same path.
//
// An *ingesting* sharded generation additionally carries ShardBuffers:
// live per-shard insert buffers plus, per shard, the first buffer row its
// tree does NOT cover, plus the live tombstone set of deleted ids. A
// query then merges each shard's tree answer with an exact flat scan of
// that shard's buffer rows [start[s], live size), masking tombstoned
// rows everywhere — so rows inserted after the generation was published
// are visible immediately and rows deleted after it vanish immediately,
// with no republish per mutation — and every live row is answered
// exactly once (tree below the cut, buffer at or above it). Compaction
// publishes a derived generation whose rebuilt shard covers the live
// rows up to a new cut, with start[s] advanced to match; the tombstones
// it folded away are purged once every older generation retires.

#ifndef SOFA_SERVICE_SNAPSHOT_H_
#define SOFA_SERVICE_SNAPSHOT_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "index/serialization.h"
#include "index/tree_index.h"
#include "ingest/insert_buffer.h"
#include "ingest/tombstone_set.h"
#include "shard/sharded_index.h"

namespace sofa {
namespace service {

/// The mutable delta sets of an ingesting sharded generation. `buffers`
/// and `start` are indexed by shard id; `start[s]` is the first row of
/// `buffers[s]` the generation's shard-s tree does not already cover.
/// `tombstones` is the generation's view of deleted global ids: a query
/// takes one immutable snapshot of it (TombstoneSet::view) and masks
/// those ids out of the buffer scans and the gather merge. The struct
/// itself is immutable per generation (compaction republishes with
/// advanced starts); the buffers and tombstone set it points at are live
/// and internally synchronized, which is what makes mutations visible
/// between publishes. `tombstones` may be null (no delete path attached —
/// treated as empty).
struct ShardBuffers {
  std::vector<std::shared_ptr<const ingest::InsertBuffer>> buffers;
  std::vector<std::size_t> start;
  std::shared_ptr<const ingest::TombstoneSet> tombstones;

  /// Live per-shard counts of un-purged tombstones routed to each shard
  /// (maintained by the Compactor: incremented before the tombstone
  /// becomes visible, decremented only when it is purged). A deleted row
  /// can displace candidates only within its own shard, so the query
  /// path widens shard s's tree search by counts[s] — not by the global
  /// tombstone count, which over-fetches num_shards-fold under
  /// delete-heavy load. Sample counts AFTER TombstoneSet::view(): every
  /// view id still resident in a live generation's tree is then
  /// guaranteed to be counted (purge ordering — see
  /// ingest/tombstone_set.h). Null means "use |view|" (conservative).
  std::shared_ptr<const std::vector<std::atomic<std::size_t>>>
      tombstone_shard_counts;
};

/// One published index generation. Exactly one of `tree` and `sharded` is
/// set; the remaining members are optional keep-alive handles for
/// whatever parts of the generation the snapshot owns (a borrowed index
/// leaves them empty — the caller then guarantees the lifetime instead;
/// a ShardedIndex always keeps its own parts alive).
struct IndexSnapshot {
  std::shared_ptr<const Dataset> data;
  std::unique_ptr<quant::SummaryScheme> scheme;
  std::unique_ptr<index::TreeIndex> owned_tree;
  const index::TreeIndex* tree = nullptr;
  std::shared_ptr<const shard::ShardedIndex> sharded;

  /// Set only on an ingesting sharded generation (see header comment).
  std::shared_ptr<const ShardBuffers> buffers;

  bool is_sharded() const { return sharded != nullptr; }
  bool is_ingesting() const { return buffers != nullptr; }

  /// Series length queries against this generation must have.
  std::size_t series_length() const {
    return sharded != nullptr ? sharded->length() : tree->data().length();
  }
};

/// Wraps an externally owned index (the common case for benches and tests:
/// index, scheme and dataset outlive the service).
inline std::shared_ptr<const IndexSnapshot> WrapIndex(
    const index::TreeIndex* tree) {
  auto snapshot = std::make_shared<IndexSnapshot>();
  snapshot->tree = tree;
  return snapshot;
}

/// Wraps a sharded index; the ShardedIndex shares ownership of its shards,
/// so the snapshot needs no further keep-alive handles.
inline std::shared_ptr<const IndexSnapshot> WrapShardedIndex(
    std::shared_ptr<const shard::ShardedIndex> sharded) {
  auto snapshot = std::make_shared<IndexSnapshot>();
  snapshot->sharded = std::move(sharded);
  return snapshot;
}

/// Wraps an ingesting sharded generation: the trees of `sharded` plus the
/// live per-shard insert buffers and tombstone set (the
/// ingest::Compactor's publish path).
inline std::shared_ptr<const IndexSnapshot> WrapIngestingIndex(
    std::shared_ptr<const shard::ShardedIndex> sharded,
    std::shared_ptr<const ShardBuffers> buffers) {
  auto snapshot = std::make_shared<IndexSnapshot>();
  snapshot->sharded = std::move(sharded);
  snapshot->buffers = std::move(buffers);
  return snapshot;
}

/// Takes ownership of a snapshot's parts — e.g. a freshly built index
/// generation. Any handle may be null except `tree`.
inline std::shared_ptr<const IndexSnapshot> MakeSnapshot(
    std::shared_ptr<const Dataset> data,
    std::unique_ptr<quant::SummaryScheme> scheme,
    std::unique_ptr<index::TreeIndex> tree) {
  auto snapshot = std::make_shared<IndexSnapshot>();
  snapshot->data = std::move(data);
  snapshot->scheme = std::move(scheme);
  snapshot->owned_tree = std::move(tree);
  snapshot->tree = snapshot->owned_tree.get();
  return snapshot;
}

/// Adopts the result of index::LoadIndex (scheme + tree), optionally with
/// a keep-alive handle on the collection it was loaded against — the
/// serialization → hot-swap path.
inline std::shared_ptr<const IndexSnapshot> AdoptLoadedIndex(
    index::LoadedIndex loaded, std::shared_ptr<const Dataset> data = nullptr) {
  return MakeSnapshot(std::move(data), std::move(loaded.scheme),
                      std::move(loaded.tree));
}

}  // namespace service
}  // namespace sofa

#endif  // SOFA_SERVICE_SNAPSHOT_H_
