// The unit of index hot-swapping: an immutable bundle of everything one
// published index generation needs to stay alive while queries run
// against it.
//
// SearchService publishes snapshots behind a std::shared_ptr; every batch
// of queries acquires the pointer once and holds it for the duration of
// execution, so a Publish() of a rebuilt or freshly LoadIndex-ed index
// never invalidates an in-flight query — the old generation is destroyed
// when its last running query drops the reference.
//
// A generation is either a single TreeIndex (`tree`) or a sharded one
// (`sharded`), never both: a sharded index is swappable exactly like a
// single one, and a derived sharded generation (one shard rebuilt or
// replaced) republishes through the same path.
//
// An *ingesting* sharded generation additionally carries ShardBuffers:
// live per-shard insert buffers plus, per shard, the first buffer row its
// tree does NOT cover. A query then merges each shard's tree answer with
// an exact flat scan of that shard's buffer rows [start[s], live size),
// so rows inserted after the generation was published are visible
// immediately — no republish per insert — and every row is answered
// exactly once (tree below the cut, buffer at or above it). Compaction
// publishes a derived generation whose rebuilt shard covers the rows up
// to a new cut, with start[s] advanced to match.

#ifndef SOFA_SERVICE_SNAPSHOT_H_
#define SOFA_SERVICE_SNAPSHOT_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "index/serialization.h"
#include "index/tree_index.h"
#include "ingest/insert_buffer.h"
#include "shard/sharded_index.h"

namespace sofa {
namespace service {

/// The mutable delta sets of an ingesting sharded generation. `buffers`
/// and `start` are indexed by shard id; `start[s]` is the first row of
/// `buffers[s]` the generation's shard-s tree does not already cover.
/// The struct itself is immutable per generation (compaction republishes
/// with advanced starts); the buffers it points at are live and
/// internally synchronized.
struct ShardBuffers {
  std::vector<std::shared_ptr<const ingest::InsertBuffer>> buffers;
  std::vector<std::size_t> start;
};

/// One published index generation. Exactly one of `tree` and `sharded` is
/// set; the remaining members are optional keep-alive handles for
/// whatever parts of the generation the snapshot owns (a borrowed index
/// leaves them empty — the caller then guarantees the lifetime instead;
/// a ShardedIndex always keeps its own parts alive).
struct IndexSnapshot {
  std::shared_ptr<const Dataset> data;
  std::unique_ptr<quant::SummaryScheme> scheme;
  std::unique_ptr<index::TreeIndex> owned_tree;
  const index::TreeIndex* tree = nullptr;
  std::shared_ptr<const shard::ShardedIndex> sharded;

  /// Set only on an ingesting sharded generation (see header comment).
  std::shared_ptr<const ShardBuffers> buffers;

  bool is_sharded() const { return sharded != nullptr; }
  bool is_ingesting() const { return buffers != nullptr; }

  /// Series length queries against this generation must have.
  std::size_t series_length() const {
    return sharded != nullptr ? sharded->length() : tree->data().length();
  }
};

/// Wraps an externally owned index (the common case for benches and tests:
/// index, scheme and dataset outlive the service).
inline std::shared_ptr<const IndexSnapshot> WrapIndex(
    const index::TreeIndex* tree) {
  auto snapshot = std::make_shared<IndexSnapshot>();
  snapshot->tree = tree;
  return snapshot;
}

/// Wraps a sharded index; the ShardedIndex shares ownership of its shards,
/// so the snapshot needs no further keep-alive handles.
inline std::shared_ptr<const IndexSnapshot> WrapShardedIndex(
    std::shared_ptr<const shard::ShardedIndex> sharded) {
  auto snapshot = std::make_shared<IndexSnapshot>();
  snapshot->sharded = std::move(sharded);
  return snapshot;
}

/// Wraps an ingesting sharded generation: the trees of `sharded` plus the
/// live per-shard insert buffers (the ingest::Compactor's publish path).
inline std::shared_ptr<const IndexSnapshot> WrapIngestingIndex(
    std::shared_ptr<const shard::ShardedIndex> sharded,
    std::shared_ptr<const ShardBuffers> buffers) {
  auto snapshot = std::make_shared<IndexSnapshot>();
  snapshot->sharded = std::move(sharded);
  snapshot->buffers = std::move(buffers);
  return snapshot;
}

/// Takes ownership of a snapshot's parts — e.g. a freshly built index
/// generation. Any handle may be null except `tree`.
inline std::shared_ptr<const IndexSnapshot> MakeSnapshot(
    std::shared_ptr<const Dataset> data,
    std::unique_ptr<quant::SummaryScheme> scheme,
    std::unique_ptr<index::TreeIndex> tree) {
  auto snapshot = std::make_shared<IndexSnapshot>();
  snapshot->data = std::move(data);
  snapshot->scheme = std::move(scheme);
  snapshot->owned_tree = std::move(tree);
  snapshot->tree = snapshot->owned_tree.get();
  return snapshot;
}

/// Adopts the result of index::LoadIndex (scheme + tree), optionally with
/// a keep-alive handle on the collection it was loaded against — the
/// serialization → hot-swap path.
inline std::shared_ptr<const IndexSnapshot> AdoptLoadedIndex(
    index::LoadedIndex loaded, std::shared_ptr<const Dataset> data = nullptr) {
  return MakeSnapshot(std::move(data), std::move(loaded.scheme),
                      std::move(loaded.tree));
}

}  // namespace service
}  // namespace sofa

#endif  // SOFA_SERVICE_SNAPSHOT_H_
