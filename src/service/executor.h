// Cross-query batch execution (the serving layer's "throughput mode").
//
// The paper's protocol parallelizes *inside* one query; under heavy
// traffic the same cores are better spent running many queries at once,
// each single-threaded (FAISS-style batched execution, FLASH's inter-query
// parallelism on CPUs). This executor is the one implementation of that
// fan-out: SearchService dispatches admitted batches through it,
// TreeIndex::SearchKnnBatch delegates to it, and ShardedIndex scatters a
// query across its shards as one task per shard (every task naming its
// own index).

#ifndef SOFA_SERVICE_EXECUTOR_H_
#define SOFA_SERVICE_EXECUTOR_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/neighbor.h"
#include "index/tree_index.h"
#include "ingest/insert_buffer.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace sofa {
namespace service {

/// One query unit of a cross-query batch. `result` is required; `profile`
/// is optional (merged work counters for this query alone).
struct QueryTask {
  const float* query = nullptr;
  std::size_t k = 1;
  double epsilon = 0.0;
  index::QueryProfile* profile = nullptr;
  std::vector<Neighbor>* result = nullptr;

  /// Index this task runs against. Required by RunTaskBatch; with
  /// RunThroughputBatch a null entry falls back to the batch-wide index
  /// (the homogeneous single-index case).
  const index::TreeIndex* index = nullptr;

  /// Insert-buffer scan unit: when `buffer` is non-null the task is an
  /// exact flat scan of the buffer rows [buffer_start, live size)
  /// instead of a tree search (`index` is then ignored) — the ingest
  /// path's delta-set half of a query, load-balanced through the same
  /// executor scatter as the tree halves. `exclude` masks tombstoned
  /// global ids inside the scan; rows scanned land in
  /// profile->series_ed_computed like any other real-distance work.
  const ingest::InsertBuffer* buffer = nullptr;
  std::size_t buffer_start = 0;
  const std::unordered_set<std::uint32_t>* exclude = nullptr;

  /// Drop-dead time, re-checked when a worker picks the task up (a task
  /// can expire while earlier tasks of the same batch run). Expired
  /// tasks are skipped and flagged instead of executed.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  bool expired = false;  // output: set by the executor

  /// Optional per-query tracing: when `trace` is non-null the worker
  /// stamps slot `span` (pre-allocated by the coordinator) with this
  /// task's execution window. Each slot belongs to exactly one task, so
  /// stamping never races.
  obs::QueryTrace* trace = nullptr;
  int span = -1;

  /// Output: hardware counters of this task's execution window (traced
  /// tasks only — untraced tasks skip sampling entirely). Also stamped
  /// onto the trace span; the service aggregates it into the
  /// sofa_query_stage_{cycles,instructions,llc_misses,stalled_cycles}
  /// histograms. `perf.hardware == false` means the rdtsc fallback
  /// (perf_event_open denied — containers, CI).
  obs::PerfSample perf;
};

/// Answers all tasks exactly, parallel across queries: `num_workers` pool
/// workers (0 = pool size) dynamically pull tasks and run each query
/// single-threaded, so per-query work never nests parallel sections.
/// Tasks without an explicit index run against `index`.
/// Safe to call from a non-pool thread only (it blocks on the pool).
void RunThroughputBatch(const index::TreeIndex& index,
                        std::vector<QueryTask>* tasks, ThreadPool* pool,
                        std::size_t num_workers = 0);

/// Heterogeneous variant: every task names its own index (the shard
/// scatter path — one query fanned into one task per shard, or a mixed
/// batch over several generations). Same threading contract as above.
void RunTaskBatch(std::vector<QueryTask>* tasks, ThreadPool* pool,
                  std::size_t num_workers = 0);

}  // namespace service
}  // namespace sofa

#endif  // SOFA_SERVICE_EXECUTOR_H_
