#include "service/executor.h"

#include <algorithm>
#include <atomic>

#include "index/query_engine.h"
#include "util/check.h"

namespace sofa {
namespace service {
namespace {

// One task: deadline check, then either the buffer flat scan or the
// single-threaded tree search.
void ExecuteTask(QueryTask* task_ptr, const index::TreeIndex* default_index) {
  QueryTask& task = *task_ptr;
  if (task.deadline != std::chrono::steady_clock::time_point::max() &&
      task.deadline < std::chrono::steady_clock::now()) {
    task.expired = true;
    return;
  }
  if (task.buffer != nullptr) {
    // Delta-set half of an ingesting query: exact flat scan of the
    // shard's insert buffer, tombstones masked inline. With the rowq
    // tier attached to the buffer, quantized-pruned rows never reach
    // the distance kernel, so ed/rowq work is accounted separately.
    ingest::InsertBuffer::ScanStats stats;
    task.buffer->SearchKnn(task.query, task.k, task.buffer_start, task.result,
                           task.exclude, &stats);
    if (task.profile != nullptr) {
      task.profile->series_ed_computed += stats.ed_computed;
      task.profile->rowq_checked += stats.rowq_checked;
      task.profile->rowq_pruned += stats.rowq_pruned;
    }
    return;
  }
  const index::TreeIndex* index =
      task.index != nullptr ? task.index : default_index;
  SOFA_DCHECK(index != nullptr);
  const index::QueryEngine engine(index);
  *task.result = engine.Search(task.query, task.k, task.epsilon,
                               task.profile, /*num_threads=*/1);
}

// Shared worker loop: tasks with a null index fall back to `default_index`
// (null only when every task names its own).
void RunTasks(std::vector<QueryTask>* tasks, ThreadPool* pool,
              std::size_t num_workers, const index::TreeIndex* default_index) {
  SOFA_CHECK(tasks != nullptr);
  SOFA_CHECK(pool != nullptr);
  if (tasks->empty()) {
    return;
  }
  if (num_workers == 0) {
    num_workers = pool->size();
  }
  num_workers = std::min(num_workers, tasks->size());
  // Grain 1: per-query costs are skewed (pruning power varies wildly
  // between queries), so workers pull one query at a time.
  std::atomic<std::size_t> next(0);
  ParallelRun(pool, num_workers, [&](std::size_t) {
    while (true) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= tasks->size()) {
        return;
      }
      QueryTask& task = (*tasks)[t];
      SOFA_DCHECK(task.result != nullptr);
      if (task.trace != nullptr) {
        // Traced tasks are bracketed by this worker's hardware counters
        // (one thread_local perf group, opened once per worker thread),
        // so cycles/instructions/LLC-miss attribution is exact per scan
        // span. Untraced tasks skip all of it — the hot path stays one
        // branch.
        obs::PerfCounters& perf = obs::PerfCounters::ForCurrentThread();
        const double span_start = task.trace->NowMs();
        perf.Start();
        ExecuteTask(&task, default_index);
        task.perf = perf.Stop();
        // Expired tasks stamp a zero-length span at pickup time — the
        // timeline then shows where the deadline cut the scatter.
        task.trace->StampSpan(task.span, span_start, task.trace->NowMs());
        task.trace->StampSpanPerf(task.span, task.perf);
      } else {
        ExecuteTask(&task, default_index);
      }
    }
  });
}

}  // namespace

void RunThroughputBatch(const index::TreeIndex& index,
                        std::vector<QueryTask>* tasks, ThreadPool* pool,
                        std::size_t num_workers) {
  RunTasks(tasks, pool, num_workers, &index);
}

void RunTaskBatch(std::vector<QueryTask>* tasks, ThreadPool* pool,
                  std::size_t num_workers) {
  RunTasks(tasks, pool, num_workers, /*default_index=*/nullptr);
}

}  // namespace service
}  // namespace sofa
