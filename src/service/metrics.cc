#include "service/metrics.h"

namespace sofa {
namespace service {
namespace {

constexpr const char* kProfileCounterNames[10] = {
    "nodes_visited",     "nodes_pruned",      "leaves_collected",
    "leaves_abandoned",  "series_lbd_checked", "series_lbd_pruned",
    "series_ed_computed", "candidates_filtered",
    "rowq_checked",      "rowq_pruned"};

}  // namespace

MetricsCollector::MetricsCollector(obs::Registry* registry) {
  if (registry == nullptr) {
    owned_registry_.reset(new obs::Registry());
    registry = owned_registry_.get();
  }
  registry_ = registry;

  const char* kRequests = "sofa_service_requests_total";
  const char* kRequestsHelp = "Requests by admission/completion status";
  submitted_ =
      registry_->GetCounter(kRequests, {{"status", "submitted"}}, kRequestsHelp);
  completed_ =
      registry_->GetCounter(kRequests, {{"status", "completed"}}, kRequestsHelp);
  rejected_ =
      registry_->GetCounter(kRequests, {{"status", "rejected"}}, kRequestsHelp);
  quota_rejected_ = registry_->GetCounter(
      kRequests, {{"status", "quota_exceeded"}}, kRequestsHelp);
  expired_ =
      registry_->GetCounter(kRequests, {{"status", "expired"}}, kRequestsHelp);
  invalid_ =
      registry_->GetCounter(kRequests, {{"status", "invalid"}}, kRequestsHelp);
  swaps_ = registry_->GetCounter("sofa_service_index_swaps_total", {},
                                 "Index generations published");
  const char* kMode = "sofa_service_mode_queries_total";
  const char* kModeHelp = "Queries by scheduling mode";
  latency_queries_ =
      registry_->GetCounter(kMode, {{"mode", "latency"}}, kModeHelp);
  throughput_queries_ =
      registry_->GetCounter(kMode, {{"mode", "throughput"}}, kModeHelp);
  throughput_batches_ =
      registry_->GetCounter("sofa_service_throughput_batches_total", {},
                            "Cross-query parallel batches dispatched");
  obs::HistogramOptions latency_options;
  latency_options.min_value = 1e-3;
  latency_options.max_value = 1e5;
  latency_ms_ = registry_->GetHistogram("sofa_service_latency_ms",
                                        latency_options, {},
                                        "End-to-end query latency (ms)");
  for (std::size_t i = 0; i < kNumPriorities; ++i) {
    const char* name = PriorityName(static_cast<Priority>(i));
    completed_by_priority_[i] = registry_->GetCounter(
        "sofa_service_priority_completed_total", {{"priority", name}},
        "Completed queries by admission priority class");
    latency_by_priority_[i] = registry_->GetHistogram(
        "sofa_service_priority_latency_ms", latency_options,
        {{"priority", name}},
        "End-to-end query latency by admission priority class (ms)");
  }
  uptime_gauge_ = registry_->GetGauge("sofa_service_uptime_seconds", {},
                                      "Seconds since the collector started");
  qps_gauge_ = registry_->GetGauge("sofa_service_qps", {},
                                   "Completed queries per uptime second");
  for (std::size_t i = 0; i < 10; ++i) {
    profile_counters_[i] = registry_->GetCounter(
        "sofa_service_profile_total", {{"counter", kProfileCounterNames[i]}},
        "Merged QueryProfile work counters of profiled queries");
  }
  rowq_checked_total_ = registry_->GetCounter(
      "sofa_query_rowq_checked_total", {},
      "Quantized-row lower bounds evaluated by the compressed pruning tier");
  rowq_pruned_total_ = registry_->GetCounter(
      "sofa_query_rowq_pruned_total", {},
      "Rows pruned by the compressed tier before the exact distance kernel");
  hook_id_ = registry_->AddCollectHook([this] { SyncDerived(); });
}

MetricsCollector::~MetricsCollector() {
  registry_->RemoveCollectHook(hook_id_);
  // Final sync: a Collect() on a shared registry after this service is
  // gone still sees the closing uptime/QPS/profile values.
  SyncDerived();
}

void MetricsCollector::SyncDerived() {
  const double uptime = uptime_.Seconds();
  uptime_gauge_->Set(uptime);
  const std::uint64_t completed = completed_->Value();
  qps_gauge_->Set(uptime > 0.0 ? static_cast<double>(completed) / uptime
                               : 0.0);
  index::QueryProfile profile;
  {
    std::lock_guard<std::mutex> lock(profile_mutex_);
    profile = profile_;
  }
  const std::uint64_t values[10] = {
      profile.nodes_visited,      profile.nodes_pruned,
      profile.leaves_collected,   profile.leaves_abandoned,
      profile.series_lbd_checked, profile.series_lbd_pruned,
      profile.series_ed_computed, profile.candidates_filtered,
      profile.rowq_checked,       profile.rowq_pruned};
  for (std::size_t i = 0; i < 10; ++i) {
    profile_counters_[i]->Set(values[i]);
  }
}

void MetricsCollector::RecordThroughputBatch(std::uint64_t batch_size) {
  throughput_batches_->Add();
  throughput_queries_->Add(batch_size);
}

void MetricsCollector::RecordCompleted(double latency_ms,
                                       const index::QueryProfile* profile,
                                       Priority priority) {
  completed_->Add();
  latency_ms_->Record(latency_ms);
  const std::size_t cls = static_cast<std::size_t>(priority);
  if (cls < kNumPriorities) {
    completed_by_priority_[cls]->Add();
    latency_by_priority_[cls]->Record(latency_ms);
  }
  if (profile != nullptr) {
    rowq_checked_total_->Add(profile->rowq_checked);
    rowq_pruned_total_->Add(profile->rowq_pruned);
    std::lock_guard<std::mutex> lock(profile_mutex_);
    profile_.Merge(*profile);
  }
}

MetricsSnapshot MetricsCollector::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.submitted = submitted_->Value();
  snapshot.completed = completed_->Value();
  snapshot.rejected = rejected_->Value();
  snapshot.quota_rejected = quota_rejected_->Value();
  snapshot.expired = expired_->Value();
  snapshot.invalid = invalid_->Value();
  snapshot.swaps = swaps_->Value();
  for (std::size_t i = 0; i < kNumPriorities; ++i) {
    snapshot.completed_by_priority[i] = completed_by_priority_[i]->Value();
  }
  snapshot.latency_queries = latency_queries_->Value();
  snapshot.throughput_batches = throughput_batches_->Value();
  snapshot.throughput_queries = throughput_queries_->Value();
  snapshot.uptime_seconds = uptime_.Seconds();
  snapshot.qps = snapshot.uptime_seconds > 0.0
                     ? static_cast<double>(snapshot.completed) /
                           snapshot.uptime_seconds
                     : 0.0;
  const LogHistogram& latency = latency_ms_->data();
  snapshot.latency_mean_ms = latency.Mean();
  snapshot.latency_p50_ms = latency.Percentile(50.0);
  snapshot.latency_p95_ms = latency.Percentile(95.0);
  snapshot.latency_p99_ms = latency.Percentile(99.0);
  snapshot.latency_max_ms = latency.MaxValue();
  {
    std::lock_guard<std::mutex> lock(profile_mutex_);
    snapshot.profile = profile_;
  }
  return snapshot;
}

}  // namespace service
}  // namespace sofa
