#include "service/metrics.h"

namespace sofa {
namespace service {

MetricsCollector::MetricsCollector() : latency_ms_(1e-3, 1e5) {}

void MetricsCollector::RecordThroughputBatch(std::uint64_t batch_size) {
  throughput_batches_.fetch_add(1, std::memory_order_relaxed);
  throughput_queries_.fetch_add(batch_size, std::memory_order_relaxed);
}

void MetricsCollector::RecordCompleted(double latency_ms,
                                       const index::QueryProfile* profile) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  latency_ms_.Record(latency_ms);
  if (profile != nullptr) {
    std::lock_guard<std::mutex> lock(profile_mutex_);
    profile_.Merge(*profile);
  }
}

MetricsSnapshot MetricsCollector::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.submitted = submitted_.load(std::memory_order_relaxed);
  snapshot.completed = completed_.load(std::memory_order_relaxed);
  snapshot.rejected = rejected_.load(std::memory_order_relaxed);
  snapshot.expired = expired_.load(std::memory_order_relaxed);
  snapshot.invalid = invalid_.load(std::memory_order_relaxed);
  snapshot.swaps = swaps_.load(std::memory_order_relaxed);
  snapshot.latency_queries =
      latency_queries_.load(std::memory_order_relaxed);
  snapshot.throughput_batches =
      throughput_batches_.load(std::memory_order_relaxed);
  snapshot.throughput_queries =
      throughput_queries_.load(std::memory_order_relaxed);
  snapshot.uptime_seconds = uptime_.Seconds();
  snapshot.qps = snapshot.uptime_seconds > 0.0
                     ? static_cast<double>(snapshot.completed) /
                           snapshot.uptime_seconds
                     : 0.0;
  snapshot.latency_mean_ms = latency_ms_.Mean();
  snapshot.latency_p50_ms = latency_ms_.Percentile(50.0);
  snapshot.latency_p95_ms = latency_ms_.Percentile(95.0);
  snapshot.latency_p99_ms = latency_ms_.Percentile(99.0);
  snapshot.latency_max_ms = latency_ms_.MaxValue();
  {
    std::lock_guard<std::mutex> lock(profile_mutex_);
    snapshot.profile = profile_;
  }
  return snapshot;
}

}  // namespace service
}  // namespace sofa
