// SearchService — the concurrent query-serving layer over the exact
// engine (ROADMAP: "serves heavy traffic from millions of users").
//
// Clients Submit() k-NN requests from any number of threads; a bounded
// admission queue sheds load beyond its capacity (kRejected). A dedicated
// dispatcher thread drains the queue in batches and adapts parallelism to
// load:
//
//   * light load (batch ≤ latency_mode_threshold): each query runs with
//     full intra-query parallelism — the paper's exploratory protocol,
//     minimal latency;
//   * heavy load: the batch runs through the cross-query executor, one
//     worker thread per query — maximal throughput at the same total
//     core count.
//
// Both modes are exact: answers are identical to a sequential
// QueryEngine::Search. The service owns the live index generation behind
// a std::shared_ptr<const IndexSnapshot>; Publish() swaps it without
// stopping traffic (in-flight batches finish on the generation they
// started with). Serving metrics (QPS, latency percentiles, admission
// counts, merged pruning profiles) accumulate in a MetricsCollector.
//
// A generation may be sharded (shard::ShardedIndex): queries then
// scatter across the shards — in latency mode one query at a time with
// one worker per shard, in throughput mode the whole batch flattened to
// (query × shard) tasks — and gather through the exact tournament merge,
// so sharded answers are identical to single-index answers over the same
// collection. Publishing a derived generation with a single shard
// rebuilt/replaced is the per-shard republish path.
//
// Admission understands per-request priority classes (interactive >
// batch > background): each class has its own FIFO inside the shared
// admission bound, dispatch drains strictly by class with a small
// per-round reserve for waiting lower classes (no total starvation), and
// latency-mode batches execute interactive requests first. Requests are
// tenant-tagged; with ServiceConfig::tenant_max_in_flight set, each
// tenant is capped to that many requests in flight (queued + executing)
// and excess is shed as kQuotaExceeded without touching the queue.
//
// The request/response structs themselves live in service/request.h —
// they are the transport-neutral API shared bit-for-bit with the network
// front end (src/net/).
//
// Threading contract: Submit() is thread-safe; the blocking helpers
// (Search, Drain, Shutdown, destructor) must be called from threads that
// are NOT workers of the service's thread pool — they wait on work the
// pool must execute.

#ifndef SOFA_SERVICE_SEARCH_SERVICE_H_
#define SOFA_SERVICE_SEARCH_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/neighbor.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "service/metrics.h"
#include "service/request.h"
#include "service/snapshot.h"
#include "util/thread_pool.h"

namespace sofa {
namespace service {

/// Service tuning knobs.
struct ServiceConfig {
  /// Admission bound: requests beyond this many pending are kRejected.
  std::size_t max_pending = 1024;

  /// Most requests drained per dispatch round (one executor batch).
  std::size_t max_batch = 64;

  /// Batches of at most this many requests run in latency mode (full
  /// intra-query parallelism); larger batches run in throughput mode
  /// (one thread per query). 0 forces throughput mode for everything.
  std::size_t latency_mode_threshold = 1;

  /// Worker threads used per dispatch round (0 = pool size).
  std::size_t num_threads = 0;

  /// Start with the dispatcher paused (requests queue up until Resume()).
  bool start_paused = false;

  /// Per dispatch round, the number of batch slots guaranteed to waiting
  /// non-interactive requests (filled batch-before-background) while
  /// interactive traffic floods the queue — the anti-starvation bound.
  /// 0 = max(1, max_batch / 8). Priority order is otherwise strict.
  std::size_t priority_reserve = 0;

  /// Per-tenant cap on requests in flight (queued + executing); requests
  /// over the cap are shed as kQuotaExceeded at Submit(). 0 = no quotas
  /// (tenants untracked, no per-tenant accounting cost).
  std::size_t tenant_max_in_flight = 0;

  /// Metrics registry the service registers its instruments into; null =
  /// a private registry owned by the collector (per-instance semantics).
  /// Pass one shared registry to co-expose service + ingest + persist
  /// metrics from a single endpoint.
  obs::Registry* registry = nullptr;

  /// Per-query tracing & slow-query log (off by default; see TraceConfig).
  obs::TraceConfig trace;
};

class SearchService {
 public:
  /// Starts serving `snapshot` (version 1) on `pool`. The pool must
  /// outlive the service and should not be shared with blocking callers
  /// (see the threading contract above).
  SearchService(std::shared_ptr<const IndexSnapshot> snapshot,
                ThreadPool* pool, ServiceConfig config = ServiceConfig{});

  /// Stops the dispatcher; pending requests are answered kShutdown.
  ~SearchService();

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Enqueues a request; the future resolves when it completes (any
  /// status). Never blocks on query execution.
  std::future<SearchResponse> Submit(SearchRequest request);

  /// Synchronous convenience: Submit + wait.
  SearchResponse Search(SearchRequest request);

  /// Publishes a new index generation; takes effect from the next
  /// dispatch round, without interrupting in-flight queries. Returns the
  /// new generation's version number.
  std::uint64_t Publish(std::shared_ptr<const IndexSnapshot> snapshot);

  /// The currently live generation (and its version, if wanted).
  std::shared_ptr<const IndexSnapshot> snapshot() const;
  std::uint64_t version() const;

  /// Pauses/resumes dispatch (admission stays open — useful to stage a
  /// backlog or quiesce execution around maintenance).
  void Pause();
  void Resume();

  /// Blocks until the queue is empty and no batch is executing. With the
  /// dispatcher paused and work queued this can only return after a
  /// Resume() from another thread — call Resume() first when staging a
  /// backlog single-threadedly.
  void Drain();

  /// Stops accepting work and fails everything still queued with
  /// kShutdown; idempotent.
  void Shutdown();

  /// Point-in-time serving metrics.
  MetricsSnapshot Metrics() const;

  /// The registry the service's instruments live in (owned or the one
  /// passed through ServiceConfig).
  obs::Registry* registry() const { return metrics_.registry(); }

  /// Traces of queries that exceeded the slow threshold (or expired
  /// their deadline) — dump on demand and at shutdown.
  const obs::SlowQueryLog& slow_query_log() const { return slow_log_; }

  /// Current queue depth (pending, not yet dispatched).
  std::size_t PendingCount() const;

  const ServiceConfig& config() const { return config_; }

 private:
  struct PendingRequest {
    SearchRequest request;
    std::promise<SearchResponse> promise;
    std::chrono::steady_clock::time_point submit_time;

    // Tracing state of a sampled/opted-in query (null otherwise).
    std::unique_ptr<obs::QueryTrace> trace;
    int admission_span = -1;
    std::uint64_t query_id = 0;
  };

  void DispatcherLoop();
  /// Pops up to max_batch requests in priority order (with the
  /// anti-starvation reserve) into `batch`. Caller holds mutex_.
  void FillBatchLocked(std::vector<PendingRequest>* batch);
  std::size_t QueuedCountLocked() const;
  /// Drops one in-flight slot of `tenant` (no-op with quotas off). Caller
  /// holds mutex_.
  void ReleaseTenantLocked(const std::string& tenant);
  /// Releases the tenant in-flight slots of a finished batch and resolves
  /// every promise (outside the lock).
  void FinishBatch(std::vector<PendingRequest>* batch,
                   std::vector<SearchResponse>* responses);
  void ExecuteBatch(std::vector<PendingRequest>* batch,
                    const IndexSnapshot& snapshot, std::uint64_t version);
  void ExecuteShardedThroughput(const IndexSnapshot& snapshot,
                                std::vector<PendingRequest>* batch,
                                const std::vector<std::size_t>& runnable,
                                std::vector<SearchResponse>* responses);
  /// Seals a traced request: attaches profile counters, feeds the stage
  /// histograms, pushes to the slow log, hands the record to the caller
  /// when requested. Must run before the response promise resolves.
  void FinishTrace(PendingRequest* pending, SearchResponse* response);
  obs::Histogram* StageHistogram(const char* span_name);

  /// Hardware-counter histograms of one executor-run stage
  /// (sofa_query_stage_{cycles,instructions,llc_misses,stalled_cycles}).
  struct StagePerfHistograms {
    obs::Histogram* cycles = nullptr;
    obs::Histogram* instructions = nullptr;
    obs::Histogram* llc_misses = nullptr;
    obs::Histogram* stalled_cycles = nullptr;
  };
  const StagePerfHistograms* StagePerf(const char* span_name) const;

  static double ElapsedMs(std::chrono::steady_clock::time_point since);

  ThreadPool* pool_;
  ServiceConfig config_;
  MetricsCollector metrics_;
  obs::TraceSampler sampler_;
  obs::SlowQueryLog slow_log_;
  std::atomic<std::uint64_t> next_query_id_{0};
  obs::Counter* traces_total_ = nullptr;
  obs::Counter* slow_queries_total_ = nullptr;
  obs::Histogram* stage_admission_ = nullptr;
  obs::Histogram* stage_scatter_ = nullptr;
  obs::Histogram* stage_shard_scan_ = nullptr;
  obs::Histogram* stage_buffer_scan_ = nullptr;
  obs::Histogram* stage_merge_ = nullptr;
  obs::Histogram* stage_search_ = nullptr;
  // Perf attribution of the executor-run scan stages (the spans the
  // workers bracket with obs::PerfCounters).
  StagePerfHistograms perf_shard_scan_;
  StagePerfHistograms perf_buffer_scan_;
  StagePerfHistograms perf_search_;

  std::mutex shutdown_mutex_;  // serializes Shutdown() callers
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // dispatcher wakeups
  std::condition_variable drain_cv_;  // Drain()/Shutdown() waiters
  std::shared_ptr<const IndexSnapshot> snapshot_;
  std::uint64_t version_ = 1;
  // One FIFO per priority class inside the shared admission bound.
  std::deque<PendingRequest> queues_[kNumPriorities];
  // In-flight (queued + executing) request count per tenant; populated
  // only when tenant quotas are on.
  std::unordered_map<std::string, std::size_t> tenant_in_flight_;
  bool paused_ = false;
  bool stopping_ = false;
  bool executing_ = false;  // a batch is running outside the lock

  std::thread dispatcher_;
};

}  // namespace service
}  // namespace sofa

#endif  // SOFA_SERVICE_SEARCH_SERVICE_H_
