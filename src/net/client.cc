#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <utility>

#include "obs/trace_serde.h"

namespace sofa {
namespace net {
namespace {

// Client-side stage names of the joined timeline (literal lifetime, as
// TraceSpan::name requires).
constexpr char kSpanClient[] = "client";
constexpr char kSpanSerialize[] = "serialize";
constexpr char kSpanSend[] = "send";
constexpr char kSpanServerQueue[] = "server_queue";
constexpr char kSpanServer[] = "server";
constexpr char kSpanReceive[] = "receive";
constexpr char kSpanDecode[] = "decode";

double MsSince(std::chrono::steady_clock::time_point origin,
               std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::milli>(t - origin).count();
}

// One end-to-end timeline: client spans in the client clock, the server
// record re-based into the gap the request_id echo proves it occupied.
obs::TraceRecord JoinTimeline(double serialize_end_ms, double send_end_ms,
                              double recv_begin_ms, double recv_end_ms,
                              double decode_end_ms, bool has_server,
                              const obs::TraceRecord& server) {
  obs::TraceRecord joined;
  joined.query_id = server.query_id;
  joined.total_ms = decode_end_ms;
  joined.deadline_expired = server.deadline_expired;

  joined.spans.push_back(
      obs::TraceSpan{kSpanClient, -1, 0.0, decode_end_ms, obs::SpanPerf{}});
  joined.spans.push_back(obs::TraceSpan{kSpanSerialize, 0, 0.0,
                                        serialize_end_ms, obs::SpanPerf{}});
  joined.spans.push_back(obs::TraceSpan{kSpanSend, 0, serialize_end_ms,
                                        send_end_ms, obs::SpanPerf{}});
  if (has_server) {
    // The server measured `server.total_ms` of the send → receive gap;
    // the remainder is the wire plus server-side framing and response
    // queueing — everything the service's own clock never saw.
    const double gap = std::max(0.0, recv_end_ms - send_end_ms);
    const double wait = std::max(0.0, gap - server.total_ms);
    const double base = send_end_ms + wait;
    joined.spans.push_back(obs::TraceSpan{kSpanServerQueue, 0, send_end_ms,
                                          base, obs::SpanPerf{}});
    const int server_span = static_cast<int>(joined.spans.size());
    joined.spans.push_back(obs::TraceSpan{
        kSpanServer, 0, base, base + server.total_ms, obs::SpanPerf{}});
    for (const obs::TraceSpan& span : server.spans) {
      obs::TraceSpan rebased = span;
      rebased.start_ms += base;
      rebased.end_ms += base;
      rebased.parent =
          span.parent < 0 ? server_span : span.parent + server_span + 1;
      joined.spans.push_back(rebased);
    }
    joined.counters = server.counters;
  }
  joined.spans.push_back(obs::TraceSpan{kSpanReceive, 0, recv_begin_ms,
                                        recv_end_ms, obs::SpanPerf{}});
  joined.spans.push_back(obs::TraceSpan{kSpanDecode, 0, recv_end_ms,
                                        decode_end_ms, obs::SpanPerf{}});
  return joined;
}

bool ReadFull(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

bool SendAll(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace

SofaClient::~SofaClient() { Close(); }

Status SofaClient::Connect(const std::string& host, std::uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("unparseable host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = IoError(std::string("connect ") + host + ": " +
                                  std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return OkStatus();
}

void SofaClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  traced_sends_.clear();
}

Status SofaClient::SendFrame(MessageType type, std::uint64_t request_id,
                             const std::vector<std::uint8_t>& payload) {
  if (fd_ < 0) {
    return IoError("not connected");
  }
  const std::vector<std::uint8_t> frame =
      EncodeFrame(static_cast<std::uint8_t>(type), request_id, payload);
  if (!SendAll(fd_, frame.data(), frame.size())) {
    Close();
    return IoError("send failed (connection lost)");
  }
  return OkStatus();
}

Status SofaClient::ReadFrame(FrameHeader* header,
                             std::vector<std::uint8_t>* payload) {
  if (fd_ < 0) {
    return IoError("not connected");
  }
  std::uint8_t header_bytes[kHeaderSize];
  if (!ReadFull(fd_, header_bytes, kHeaderSize)) {
    Close();
    return IoError("connection closed by server");
  }
  Status status = DecodeHeader(header_bytes, kHeaderSize, header);
  if (!status.ok()) {
    Close();
    return status;
  }
  payload->resize(header->payload_size);
  if (!ReadFull(fd_, payload->data(), payload->size())) {
    Close();
    return IoError("truncated response");
  }
  status = VerifyPayload(*header, payload->data(), payload->size());
  if (!status.ok()) {
    Close();
  }
  return status;
}

Status SofaClient::Call(MessageType type,
                        const std::vector<std::uint8_t>& payload,
                        std::vector<std::uint8_t>* response_payload) {
  const std::uint64_t request_id = next_request_id_++;
  Status status = SendFrame(type, request_id, payload);
  if (!status.ok()) {
    return status;
  }
  FrameHeader header;
  status = ReadFrame(&header, response_payload);
  if (!status.ok()) {
    return status;
  }
  if (header.type != (static_cast<std::uint8_t>(type) | kResponseBit) ||
      header.request_id != request_id) {
    Close();
    return ProtocolError("response type/id mismatch");
  }
  return OkStatus();
}

Status SofaClient::Search(const service::SearchRequest& request,
                          service::SearchResponse* out,
                          std::string* trace_text, std::string* message,
                          WireTrace* wire_trace) {
  std::uint64_t request_id = 0;
  const Status sent = SendSearch(request, &request_id);
  if (!sent.ok()) {
    return sent;
  }
  std::uint64_t response_id = 0;
  const Status received = ReceiveSearchResponse(&response_id, out, trace_text,
                                                message, wire_trace);
  if (!received.ok()) {
    return received;
  }
  if (response_id != request_id) {
    Close();
    return ProtocolError("response id mismatch");
  }
  return OkStatus();
}

Status SofaClient::SendSearch(const service::SearchRequest& request,
                              std::uint64_t* request_id) {
  *request_id = next_request_id_++;
  if (!request.collect_trace) {
    return SendFrame(MessageType::kSearch, *request_id,
                     EncodeSearchRequest(request));
  }
  SendTiming timing;
  timing.origin = std::chrono::steady_clock::now();
  const std::vector<std::uint8_t> payload = EncodeSearchRequest(request);
  timing.serialize_end_ms =
      MsSince(timing.origin, std::chrono::steady_clock::now());
  const Status sent = SendFrame(MessageType::kSearch, *request_id, payload);
  if (!sent.ok()) {
    return sent;  // Close() already wiped traced_sends_
  }
  timing.send_end_ms = MsSince(timing.origin, std::chrono::steady_clock::now());
  traced_sends_[*request_id] = timing;
  return OkStatus();
}

Status SofaClient::ReceiveSearchResponse(std::uint64_t* request_id,
                                         service::SearchResponse* out,
                                         std::string* trace_text,
                                         std::string* message,
                                         WireTrace* wire_trace) {
  const std::chrono::steady_clock::time_point recv_begin =
      std::chrono::steady_clock::now();
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  Status status = ReadFrame(&header, &payload);
  if (!status.ok()) {
    return status;
  }
  if (header.type !=
      (static_cast<std::uint8_t>(MessageType::kSearch) | kResponseBit)) {
    Close();
    return ProtocolError("unexpected response type");
  }
  *request_id = header.request_id;
  const std::chrono::steady_clock::time_point recv_end =
      std::chrono::steady_clock::now();
  std::string local_message;
  std::string local_trace;
  std::string trace_blob;
  status = DecodeSearchResponse(
      payload.data(), payload.size(), out,
      message != nullptr ? message : &local_message,
      trace_text != nullptr ? trace_text : &local_trace, &trace_blob,
      header.version);
  if (!status.ok()) {
    Close();
    return status;
  }

  // Structured trace section (v2): the server record travels verbatim.
  // A blob version from the future decodes as "no trace", never as an
  // error (see obs/trace_serde.h).
  obs::TraceRecord server_record;
  const bool has_server_trace =
      !trace_blob.empty() &&
      obs::DeserializeTraceRecord(trace_blob, &server_record);
  if (has_server_trace) {
    out->trace =
        std::make_shared<const obs::TraceRecord>(server_record);
  }

  if (wire_trace != nullptr) {
    // Times relative to the request's serialize start; a receive with no
    // recorded send (untraced request, reconnect) anchors at recv_begin.
    const auto timing = traced_sends_.find(header.request_id);
    std::chrono::steady_clock::time_point origin = recv_begin;
    double serialize_end_ms = 0.0;
    double send_end_ms = 0.0;
    if (timing != traced_sends_.end()) {
      origin = timing->second.origin;
      serialize_end_ms = timing->second.serialize_end_ms;
      send_end_ms = timing->second.send_end_ms;
    }
    const double recv_begin_ms = MsSince(origin, recv_begin);
    const double recv_end_ms = MsSince(origin, recv_end);
    const double decode_end_ms =
        MsSince(origin, std::chrono::steady_clock::now());
    wire_trace->has_server_trace = has_server_trace;
    wire_trace->server = server_record;
    wire_trace->joined = JoinTimeline(
        serialize_end_ms, send_end_ms, std::max(recv_begin_ms, send_end_ms),
        recv_end_ms, decode_end_ms, has_server_trace, server_record);
  }
  traced_sends_.erase(header.request_id);
  return status;
}

StatusOr<std::uint32_t> SofaClient::Insert(const std::vector<float>& row) {
  std::vector<std::uint8_t> payload;
  Status status = Call(MessageType::kInsert, EncodeInsertRequest(row),
                       &payload);
  if (!status.ok()) {
    return status;
  }
  Status server_status;
  std::uint32_t id = 0;
  status = DecodeInsertResponse(payload.data(), payload.size(),
                                &server_status, &id);
  if (!status.ok()) {
    Close();
    return status;
  }
  if (!server_status.ok()) {
    return server_status;
  }
  return id;
}

Status SofaClient::Delete(std::uint32_t id) {
  std::vector<std::uint8_t> payload;
  Status status = Call(MessageType::kDelete, EncodeDeleteRequest(id),
                       &payload);
  if (!status.ok()) {
    return status;
  }
  Status server_status;
  status = DecodeDeleteResponse(payload.data(), payload.size(),
                                &server_status);
  if (!status.ok()) {
    Close();
    return status;
  }
  return server_status;
}

StatusOr<std::string> SofaClient::Stats(StatsFormat format) {
  std::vector<std::uint8_t> payload;
  Status status = Call(MessageType::kStats, EncodeStatsRequest(format),
                       &payload);
  if (!status.ok()) {
    return status;
  }
  Status server_status;
  std::string text;
  status = DecodeStatsResponse(payload.data(), payload.size(),
                               &server_status, &text);
  if (!status.ok()) {
    Close();
    return status;
  }
  if (!server_status.ok()) {
    return server_status;
  }
  return text;
}

StatusOr<std::uint64_t> SofaClient::Admin(AdminOp op) {
  std::vector<std::uint8_t> payload;
  Status status = Call(MessageType::kAdmin, EncodeAdminRequest(op), &payload);
  if (!status.ok()) {
    return status;
  }
  Status server_status;
  std::uint64_t version = 0;
  status = DecodeAdminResponse(payload.data(), payload.size(),
                               &server_status, &version);
  if (!status.ok()) {
    Close();
    return status;
  }
  if (!server_status.ok()) {
    return server_status;
  }
  return version;
}

}  // namespace net
}  // namespace sofa
