#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sofa {
namespace net {
namespace {

bool ReadFull(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

bool SendAll(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace

SofaClient::~SofaClient() { Close(); }

Status SofaClient::Connect(const std::string& host, std::uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("unparseable host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = IoError(std::string("connect ") + host + ": " +
                                  std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return OkStatus();
}

void SofaClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SofaClient::SendFrame(MessageType type, std::uint64_t request_id,
                             const std::vector<std::uint8_t>& payload) {
  if (fd_ < 0) {
    return IoError("not connected");
  }
  const std::vector<std::uint8_t> frame =
      EncodeFrame(static_cast<std::uint8_t>(type), request_id, payload);
  if (!SendAll(fd_, frame.data(), frame.size())) {
    Close();
    return IoError("send failed (connection lost)");
  }
  return OkStatus();
}

Status SofaClient::ReadFrame(FrameHeader* header,
                             std::vector<std::uint8_t>* payload) {
  if (fd_ < 0) {
    return IoError("not connected");
  }
  std::uint8_t header_bytes[kHeaderSize];
  if (!ReadFull(fd_, header_bytes, kHeaderSize)) {
    Close();
    return IoError("connection closed by server");
  }
  Status status = DecodeHeader(header_bytes, kHeaderSize, header);
  if (!status.ok()) {
    Close();
    return status;
  }
  payload->resize(header->payload_size);
  if (!ReadFull(fd_, payload->data(), payload->size())) {
    Close();
    return IoError("truncated response");
  }
  status = VerifyPayload(*header, payload->data(), payload->size());
  if (!status.ok()) {
    Close();
  }
  return status;
}

Status SofaClient::Call(MessageType type,
                        const std::vector<std::uint8_t>& payload,
                        std::vector<std::uint8_t>* response_payload) {
  const std::uint64_t request_id = next_request_id_++;
  Status status = SendFrame(type, request_id, payload);
  if (!status.ok()) {
    return status;
  }
  FrameHeader header;
  status = ReadFrame(&header, response_payload);
  if (!status.ok()) {
    return status;
  }
  if (header.type != (static_cast<std::uint8_t>(type) | kResponseBit) ||
      header.request_id != request_id) {
    Close();
    return ProtocolError("response type/id mismatch");
  }
  return OkStatus();
}

Status SofaClient::Search(const service::SearchRequest& request,
                          service::SearchResponse* out,
                          std::string* trace_text, std::string* message) {
  std::uint64_t request_id = 0;
  const Status sent = SendSearch(request, &request_id);
  if (!sent.ok()) {
    return sent;
  }
  std::uint64_t response_id = 0;
  const Status received =
      ReceiveSearchResponse(&response_id, out, trace_text, message);
  if (!received.ok()) {
    return received;
  }
  if (response_id != request_id) {
    Close();
    return ProtocolError("response id mismatch");
  }
  return OkStatus();
}

Status SofaClient::SendSearch(const service::SearchRequest& request,
                              std::uint64_t* request_id) {
  *request_id = next_request_id_++;
  return SendFrame(MessageType::kSearch, *request_id,
                   EncodeSearchRequest(request));
}

Status SofaClient::ReceiveSearchResponse(std::uint64_t* request_id,
                                         service::SearchResponse* out,
                                         std::string* trace_text,
                                         std::string* message) {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  Status status = ReadFrame(&header, &payload);
  if (!status.ok()) {
    return status;
  }
  if (header.type !=
      (static_cast<std::uint8_t>(MessageType::kSearch) | kResponseBit)) {
    Close();
    return ProtocolError("unexpected response type");
  }
  *request_id = header.request_id;
  std::string local_message;
  std::string local_trace;
  status = DecodeSearchResponse(payload.data(), payload.size(), out,
                                message != nullptr ? message : &local_message,
                                trace_text != nullptr ? trace_text
                                                      : &local_trace);
  if (!status.ok()) {
    Close();
  }
  return status;
}

StatusOr<std::uint32_t> SofaClient::Insert(const std::vector<float>& row) {
  std::vector<std::uint8_t> payload;
  Status status = Call(MessageType::kInsert, EncodeInsertRequest(row),
                       &payload);
  if (!status.ok()) {
    return status;
  }
  Status server_status;
  std::uint32_t id = 0;
  status = DecodeInsertResponse(payload.data(), payload.size(),
                                &server_status, &id);
  if (!status.ok()) {
    Close();
    return status;
  }
  if (!server_status.ok()) {
    return server_status;
  }
  return id;
}

Status SofaClient::Delete(std::uint32_t id) {
  std::vector<std::uint8_t> payload;
  Status status = Call(MessageType::kDelete, EncodeDeleteRequest(id),
                       &payload);
  if (!status.ok()) {
    return status;
  }
  Status server_status;
  status = DecodeDeleteResponse(payload.data(), payload.size(),
                                &server_status);
  if (!status.ok()) {
    Close();
    return status;
  }
  return server_status;
}

StatusOr<std::string> SofaClient::Stats(StatsFormat format) {
  std::vector<std::uint8_t> payload;
  Status status = Call(MessageType::kStats, EncodeStatsRequest(format),
                       &payload);
  if (!status.ok()) {
    return status;
  }
  Status server_status;
  std::string text;
  status = DecodeStatsResponse(payload.data(), payload.size(),
                               &server_status, &text);
  if (!status.ok()) {
    Close();
    return status;
  }
  if (!server_status.ok()) {
    return server_status;
  }
  return text;
}

StatusOr<std::uint64_t> SofaClient::Admin(AdminOp op) {
  std::vector<std::uint8_t> payload;
  Status status = Call(MessageType::kAdmin, EncodeAdminRequest(op), &payload);
  if (!status.ok()) {
    return status;
  }
  Status server_status;
  std::uint64_t version = 0;
  status = DecodeAdminResponse(payload.data(), payload.size(),
                               &server_status, &version);
  if (!status.ok()) {
    Close();
    return status;
  }
  if (!server_status.ok()) {
    return server_status;
  }
  return version;
}

}  // namespace net
}  // namespace sofa
