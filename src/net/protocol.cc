#include "net/protocol.h"

#include <cstring>

#include "util/check.h"
#include "util/crc32.h"

namespace sofa {
namespace net {
namespace {

void PutU16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void PutU32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void PutU64(std::uint8_t* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
  PutU32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t GetU16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t GetU32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t GetU64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(GetU32(in)) |
         (static_cast<std::uint64_t>(GetU32(in + 4)) << 32);
}

// The profile travels as its counters in declaration order: 8 at
// protocol v1, 10 at v2 (the rowq tier counters joined the struct after
// v1 froze).
void WriteProfile(PayloadWriter* writer, const index::QueryProfile& profile,
                  std::uint8_t version) {
  writer->U64(profile.nodes_visited);
  writer->U64(profile.nodes_pruned);
  writer->U64(profile.leaves_collected);
  writer->U64(profile.leaves_abandoned);
  writer->U64(profile.series_lbd_checked);
  writer->U64(profile.series_lbd_pruned);
  writer->U64(profile.series_ed_computed);
  writer->U64(profile.candidates_filtered);
  if (version >= 2) {
    writer->U64(profile.rowq_checked);
    writer->U64(profile.rowq_pruned);
  }
}

bool ReadProfile(PayloadReader* reader, index::QueryProfile* profile,
                 std::uint8_t version) {
  if (!(reader->U64(&profile->nodes_visited) &&
        reader->U64(&profile->nodes_pruned) &&
        reader->U64(&profile->leaves_collected) &&
        reader->U64(&profile->leaves_abandoned) &&
        reader->U64(&profile->series_lbd_checked) &&
        reader->U64(&profile->series_lbd_pruned) &&
        reader->U64(&profile->series_ed_computed) &&
        reader->U64(&profile->candidates_filtered))) {
    return false;
  }
  if (version >= 2) {
    return reader->U64(&profile->rowq_checked) &&
           reader->U64(&profile->rowq_pruned);
  }
  return true;
}

Status Malformed() { return ProtocolError("malformed payload"); }

}  // namespace

void EncodeHeader(const FrameHeader& header, std::uint8_t* out) {
  PutU32(out, kMagic);
  out[4] = header.version;
  out[5] = header.type;
  PutU16(out + 6, header.flags);
  PutU64(out + 8, header.request_id);
  PutU32(out + 16, header.payload_size);
  PutU32(out + 20, header.payload_crc32);
}

Status DecodeHeader(const std::uint8_t* data, std::size_t size,
                    FrameHeader* out) {
  if (size < kHeaderSize) {
    return ProtocolError("short header");
  }
  if (GetU32(data) != kMagic) {
    return ProtocolError("bad magic");
  }
  out->version = data[4];
  if (out->version < kMinProtocolVersion ||
      out->version > kProtocolVersion) {
    return ProtocolError("unsupported protocol version");
  }
  out->type = data[5];
  out->flags = GetU16(data + 6);
  out->request_id = GetU64(data + 8);
  out->payload_size = GetU32(data + 16);
  out->payload_crc32 = GetU32(data + 20);
  if (out->payload_size > kMaxPayloadSize) {
    return ProtocolError("payload size over limit");
  }
  return OkStatus();
}

std::vector<std::uint8_t> EncodeFrame(
    std::uint8_t type, std::uint64_t request_id,
    const std::vector<std::uint8_t>& payload, std::uint8_t version) {
  SOFA_CHECK(payload.size() <= kMaxPayloadSize);
  FrameHeader header;
  header.version = version;
  header.type = type;
  header.request_id = request_id;
  header.payload_size = static_cast<std::uint32_t>(payload.size());
  header.payload_crc32 =
      Crc32(payload.data(), payload.size());
  std::vector<std::uint8_t> frame(kHeaderSize + payload.size());
  EncodeHeader(header, frame.data());
  std::memcpy(frame.data() + kHeaderSize, payload.data(), payload.size());
  return frame;
}

Status VerifyPayload(const FrameHeader& header, const std::uint8_t* payload,
                     std::size_t size) {
  if (size != header.payload_size) {
    return ProtocolError("payload size mismatch");
  }
  if (Crc32(payload, size) != header.payload_crc32) {
    return ProtocolError("payload CRC mismatch");
  }
  return OkStatus();
}

void PayloadWriter::U16(std::uint16_t v) {
  std::uint8_t buf[2];
  PutU16(buf, v);
  bytes_.insert(bytes_.end(), buf, buf + 2);
}

void PayloadWriter::U32(std::uint32_t v) {
  std::uint8_t buf[4];
  PutU32(buf, v);
  bytes_.insert(bytes_.end(), buf, buf + 4);
}

void PayloadWriter::U64(std::uint64_t v) {
  std::uint8_t buf[8];
  PutU64(buf, v);
  bytes_.insert(bytes_.end(), buf, buf + 8);
}

void PayloadWriter::F32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U32(bits);
}

void PayloadWriter::F64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void PayloadWriter::SmallString(const std::string& s) {
  SOFA_CHECK(s.size() <= 0xFFFF) << "small string over 64 KiB";
  U16(static_cast<std::uint16_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void PayloadWriter::String(const std::string& s) {
  SOFA_CHECK(s.size() <= kMaxPayloadSize);
  U32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void PayloadWriter::FloatVector(const std::vector<float>& v) {
  SOFA_CHECK(v.size() <= kMaxPayloadSize / sizeof(float));
  U32(static_cast<std::uint32_t>(v.size()));
  for (const float f : v) {
    F32(f);
  }
}

bool PayloadReader::Raw(void* out, std::size_t n) {
  if (size_ - pos_ < n) {
    pos_ = size_;  // poison: every later read fails too
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

bool PayloadReader::U8(std::uint8_t* v) { return Raw(v, 1); }

bool PayloadReader::U16(std::uint16_t* v) {
  std::uint8_t buf[2];
  if (!Raw(buf, 2)) return false;
  *v = GetU16(buf);
  return true;
}

bool PayloadReader::U32(std::uint32_t* v) {
  std::uint8_t buf[4];
  if (!Raw(buf, 4)) return false;
  *v = GetU32(buf);
  return true;
}

bool PayloadReader::U64(std::uint64_t* v) {
  std::uint8_t buf[8];
  if (!Raw(buf, 8)) return false;
  *v = GetU64(buf);
  return true;
}

bool PayloadReader::F32(float* v) {
  std::uint32_t bits;
  if (!U32(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool PayloadReader::F64(double* v) {
  std::uint64_t bits;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool PayloadReader::SmallString(std::string* s) {
  std::uint16_t n;
  if (!U16(&n) || size_ - pos_ < n) {
    pos_ = size_;
    return false;
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

bool PayloadReader::String(std::string* s) {
  std::uint32_t n;
  if (!U32(&n) || size_ - pos_ < n) {
    pos_ = size_;
    return false;
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

bool PayloadReader::FloatVector(std::vector<float>* v) {
  std::uint32_t n;
  if (!U32(&n) || (size_ - pos_) / sizeof(float) < n) {
    pos_ = size_;
    return false;
  }
  v->resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!F32(&(*v)[i])) return false;
  }
  return true;
}

void WriteStatus(PayloadWriter* writer, const Status& status) {
  writer->U16(static_cast<std::uint16_t>(status.code()));
  writer->SmallString(status.message().size() <= 0xFFFF
                          ? status.message()
                          : status.message().substr(0, 0xFFFF));
}

bool ReadStatus(PayloadReader* reader, Status* status) {
  std::uint16_t code;
  std::string message;
  if (!reader->U16(&code) || !reader->SmallString(&message)) {
    return false;
  }
  // Unknown codes (a newer peer) degrade to kInternal rather than
  // reinterpreting as an arbitrary known code.
  if (code > static_cast<std::uint16_t>(StatusCode::kInternal)) {
    *status = InternalError("unknown status code from peer");
    return true;
  }
  *status = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

std::vector<std::uint8_t> EncodeSearchRequest(
    const service::SearchRequest& request) {
  PayloadWriter writer;
  writer.U32(static_cast<std::uint32_t>(request.k));
  writer.F64(request.epsilon);
  writer.U8(static_cast<std::uint8_t>(request.priority));
  std::uint8_t bits = 0;
  if (request.collect_profile) bits |= 1;
  if (request.collect_trace) bits |= 2;
  writer.U8(bits);
  writer.F64(request.deadline_ms);
  writer.SmallString(request.tenant);
  writer.FloatVector(request.query);
  return writer.Take();
}

Status DecodeSearchRequest(const std::uint8_t* data, std::size_t size,
                           service::SearchRequest* out) {
  PayloadReader reader(data, size);
  std::uint32_t k;
  std::uint8_t priority;
  std::uint8_t bits;
  if (!reader.U32(&k) || !reader.F64(&out->epsilon) ||
      !reader.U8(&priority) || !reader.U8(&bits) ||
      !reader.F64(&out->deadline_ms) || !reader.SmallString(&out->tenant) ||
      !reader.FloatVector(&out->query) || !reader.AtEnd()) {
    return Malformed();
  }
  if (priority >= service::kNumPriorities) {
    return ProtocolError("unknown priority class");
  }
  out->k = k;
  out->priority = static_cast<service::Priority>(priority);
  out->collect_profile = (bits & 1) != 0;
  out->collect_trace = (bits & 2) != 0;
  return OkStatus();
}

std::vector<std::uint8_t> EncodeSearchResponse(
    const service::SearchResponse& response, const Status& status,
    const std::string& trace_text, const std::string& trace_blob,
    std::uint8_t version) {
  PayloadWriter writer;
  WriteStatus(&writer, status);
  writer.U64(response.index_version);
  writer.F64(response.latency_ms);
  writer.U32(static_cast<std::uint32_t>(response.neighbors.size()));
  for (const Neighbor& neighbor : response.neighbors) {
    writer.U32(neighbor.id);
    writer.F32(neighbor.distance);
  }
  WriteProfile(&writer, response.profile, version);
  writer.String(trace_text);
  if (version >= 2) {
    writer.String(trace_blob);  // empty = no structured trace
  }
  return writer.Take();
}

Status DecodeSearchResponse(const std::uint8_t* data, std::size_t size,
                            service::SearchResponse* out,
                            std::string* message, std::string* trace_text,
                            std::string* trace_blob, std::uint8_t version) {
  PayloadReader reader(data, size);
  Status status;
  std::uint32_t count;
  if (!ReadStatus(&reader, &status) || !reader.U64(&out->index_version) ||
      !reader.F64(&out->latency_ms) || !reader.U32(&count) ||
      count > size / 8) {
    return Malformed();
  }
  out->status = status.code();
  *message = status.message();
  out->neighbors.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!reader.U32(&out->neighbors[i].id) ||
        !reader.F32(&out->neighbors[i].distance)) {
      return Malformed();
    }
  }
  if (!ReadProfile(&reader, &out->profile, version) ||
      !reader.String(trace_text)) {
    return Malformed();
  }
  if (version >= 2) {
    std::string blob;
    if (!reader.String(&blob)) {
      return Malformed();
    }
    if (trace_blob != nullptr) {
      *trace_blob = std::move(blob);
    }
  } else if (trace_blob != nullptr) {
    trace_blob->clear();
  }
  if (!reader.AtEnd()) {
    return Malformed();
  }
  return OkStatus();
}

std::vector<std::uint8_t> EncodeInsertRequest(const std::vector<float>& row) {
  PayloadWriter writer;
  writer.FloatVector(row);
  return writer.Take();
}

Status DecodeInsertRequest(const std::uint8_t* data, std::size_t size,
                           std::vector<float>* row) {
  PayloadReader reader(data, size);
  if (!reader.FloatVector(row) || !reader.AtEnd()) {
    return Malformed();
  }
  return OkStatus();
}

std::vector<std::uint8_t> EncodeInsertResponse(const Status& status,
                                               std::uint32_t id) {
  PayloadWriter writer;
  WriteStatus(&writer, status);
  writer.U32(id);
  return writer.Take();
}

Status DecodeInsertResponse(const std::uint8_t* data, std::size_t size,
                            Status* status, std::uint32_t* id) {
  PayloadReader reader(data, size);
  if (!ReadStatus(&reader, status) || !reader.U32(id) || !reader.AtEnd()) {
    return Malformed();
  }
  return OkStatus();
}

std::vector<std::uint8_t> EncodeDeleteRequest(std::uint32_t id) {
  PayloadWriter writer;
  writer.U32(id);
  return writer.Take();
}

Status DecodeDeleteRequest(const std::uint8_t* data, std::size_t size,
                           std::uint32_t* id) {
  PayloadReader reader(data, size);
  if (!reader.U32(id) || !reader.AtEnd()) {
    return Malformed();
  }
  return OkStatus();
}

std::vector<std::uint8_t> EncodeDeleteResponse(const Status& status) {
  PayloadWriter writer;
  WriteStatus(&writer, status);
  return writer.Take();
}

Status DecodeDeleteResponse(const std::uint8_t* data, std::size_t size,
                            Status* status) {
  PayloadReader reader(data, size);
  if (!ReadStatus(&reader, status) || !reader.AtEnd()) {
    return Malformed();
  }
  return OkStatus();
}

std::vector<std::uint8_t> EncodeStatsRequest(StatsFormat format) {
  PayloadWriter writer;
  writer.U8(static_cast<std::uint8_t>(format));
  return writer.Take();
}

Status DecodeStatsRequest(const std::uint8_t* data, std::size_t size,
                          StatsFormat* format) {
  PayloadReader reader(data, size);
  std::uint8_t raw;
  if (!reader.U8(&raw) || !reader.AtEnd()) {
    return Malformed();
  }
  if (raw > static_cast<std::uint8_t>(StatsFormat::kPretty)) {
    return ProtocolError("unknown stats format");
  }
  *format = static_cast<StatsFormat>(raw);
  return OkStatus();
}

std::vector<std::uint8_t> EncodeStatsResponse(const Status& status,
                                              const std::string& text) {
  PayloadWriter writer;
  WriteStatus(&writer, status);
  writer.String(text);
  return writer.Take();
}

Status DecodeStatsResponse(const std::uint8_t* data, std::size_t size,
                           Status* status, std::string* text) {
  PayloadReader reader(data, size);
  if (!ReadStatus(&reader, status) || !reader.String(text) ||
      !reader.AtEnd()) {
    return Malformed();
  }
  return OkStatus();
}

std::vector<std::uint8_t> EncodeAdminRequest(AdminOp op) {
  PayloadWriter writer;
  writer.U8(static_cast<std::uint8_t>(op));
  return writer.Take();
}

Status DecodeAdminRequest(const std::uint8_t* data, std::size_t size,
                          AdminOp* op) {
  PayloadReader reader(data, size);
  std::uint8_t raw;
  if (!reader.U8(&raw) || !reader.AtEnd()) {
    return Malformed();
  }
  if (raw < static_cast<std::uint8_t>(AdminOp::kCheckpoint) ||
      raw > static_cast<std::uint8_t>(AdminOp::kSwap)) {
    return ProtocolError("unknown admin op");
  }
  *op = static_cast<AdminOp>(raw);
  return OkStatus();
}

std::vector<std::uint8_t> EncodeAdminResponse(const Status& status,
                                              std::uint64_t version) {
  PayloadWriter writer;
  WriteStatus(&writer, status);
  writer.U64(version);
  return writer.Take();
}

Status DecodeAdminResponse(const std::uint8_t* data, std::size_t size,
                           Status* status, std::uint64_t* version) {
  PayloadReader reader(data, size);
  if (!ReadStatus(&reader, status) || !reader.U64(version) ||
      !reader.AtEnd()) {
    return Malformed();
  }
  return OkStatus();
}

}  // namespace net
}  // namespace sofa
