// SofaServer — the long-running TCP front end of the serving stack.
//
// One accept thread (non-blocking listen socket polled against a stop
// flag) hands each connection to a reader/writer thread pair:
//
//   * the reader blocks on the socket, frames requests (net/protocol),
//     and dispatches them — SEARCH goes straight into the
//     SearchService admission queue (priority classes, tenant quotas and
//     deadlines all honored by the service, exactly as in-process),
//     INSERT/DELETE into the attached Compactor, STATS renders the
//     shared obs::Registry, ADMIN drives the maintenance surface
//     (checkpoint / persist / compact / hot-swap republish);
//   * the writer drains a per-connection FIFO of pending replies —
//     SEARCH replies wait on the service future in queue order, the
//     rest are encoded inline by the reader — so responses always come
//     back in request order per connection while SEARCH requests from
//     one connection still pipeline through the admission queue.
//
// Framing errors (bad magic, unsupported version, CRC mismatch,
// oversized payload) poison the byte stream and close the connection;
// well-framed but malformed payloads get a typed kProtocolError response
// and the connection lives on.
//
// Graceful drain (SIGTERM path): RequestDrain() stops the accept loop
// and half-closes every connection's read side — requests already read
// or queued finish, their responses flush, then connections close.
// Shutdown() = drain + join everything; idempotent.

#ifndef SOFA_NET_SERVER_H_
#define SOFA_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ingest/compactor.h"
#include "net/protocol.h"
#include "obs/registry.h"
#include "service/search_service.h"
#include "util/status.h"

namespace sofa {
namespace net {

struct ServerConfig {
  /// Bind address. "0.0.0.0" serves every interface.
  std::string host = "127.0.0.1";

  /// Listen port; 0 asks the kernel for an ephemeral port (the bound
  /// port is readable from port() after Start()).
  std::uint16_t port = 0;

  /// Concurrent connections beyond this are accepted and immediately
  /// closed (the client sees EOF before any frame).
  std::size_t max_connections = 64;
};

/// Point-in-time serving-tier counters (also mirrored as sofa_net_*
/// instruments in the service's registry).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // over max_connections
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t protocol_errors = 0;  // framing + payload decode failures
  std::size_t active_connections = 0;
};

class SofaServer {
 public:
  /// Serves `service` (required) and, when non-null, `compactor` for the
  /// mutation + admin surface; without a compactor, INSERT/DELETE and
  /// the compactor-backed admin ops answer kUnavailable. Both must
  /// outlive the server. Instruments register into service->registry().
  SofaServer(service::SearchService* service, ingest::Compactor* compactor,
             ServerConfig config = ServerConfig{});

  /// Shutdown() if still running.
  ~SofaServer();

  SofaServer(const SofaServer&) = delete;
  SofaServer& operator=(const SofaServer&) = delete;

  /// Binds, listens and starts the accept loop. kIoError with the OS
  /// failure in the message when the address cannot be bound.
  Status Start();

  /// The bound port (after Start(); the kernel's pick when config.port
  /// was 0).
  std::uint16_t port() const { return port_; }

  /// Stops accepting connections and half-closes existing ones so
  /// in-flight requests finish and flush; returns immediately. Safe to
  /// call from a signal-watcher thread.
  void RequestDrain();

  /// Drain + wait for every connection to finish + join all threads.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  /// True once every connection has drained (Shutdown() will not block).
  bool Drained() const;

  ServerStats Stats() const;

 private:
  // One reply slot in a connection's ordered response queue: either the
  // bytes are ready, or a SEARCH future still owes them.
  struct PendingReply {
    std::uint64_t request_id = 0;
    std::uint8_t type = 0;  // response wire type (request | kResponseBit)
    // Protocol version of the request; the response is framed and
    // encoded at the same version (a v1 client never sees v2 bytes).
    std::uint8_t version = kProtocolVersion;
    bool is_search = false;
    std::vector<std::uint8_t> payload;  // ready replies
    std::future<service::SearchResponse> future;  // search replies
    bool collect_trace = false;
  };

  struct Connection {
    int fd = -1;
    std::thread reader;
    std::thread writer;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<PendingReply> queue;
    bool closing = false;  // reader done; writer drains then exits
    std::atomic<bool> done{false};  // both threads finished
  };

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WriterLoop(Connection* conn);
  /// Dispatches one framed request; returns the reply slot to enqueue.
  PendingReply Dispatch(const FrameHeader& header,
                        const std::vector<std::uint8_t>& payload);
  PendingReply HandleInsert(const FrameHeader& header,
                            const std::vector<std::uint8_t>& payload);
  PendingReply HandleDelete(const FrameHeader& header,
                            const std::vector<std::uint8_t>& payload);
  PendingReply HandleStats(const FrameHeader& header,
                           const std::vector<std::uint8_t>& payload);
  PendingReply HandleAdmin(const FrameHeader& header,
                           const std::vector<std::uint8_t>& payload);
  void ReapFinishedLocked();

  service::SearchService* service_;
  ingest::Compactor* compactor_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_accepting_{false};
  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool shut_down_ = false;
  std::thread accept_thread_;

  mutable std::mutex conn_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};

  // sofa_net_* mirrors in the service registry (collect hook).
  obs::Registry* registry_;
  obs::Counter* net_connections_ = nullptr;
  obs::Counter* net_frames_received_ = nullptr;
  obs::Counter* net_frames_sent_ = nullptr;
  obs::Counter* net_protocol_errors_ = nullptr;
  obs::Gauge* net_active_ = nullptr;
  std::uint64_t hook_id_ = 0;
};

}  // namespace net
}  // namespace sofa

#endif  // SOFA_NET_SERVER_H_
