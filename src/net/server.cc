#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/exposition.h"
#include "obs/trace.h"
#include "obs/trace_serde.h"
#include "util/check.h"

namespace sofa {
namespace net {
namespace {

// Blocking-socket full read; false on EOF or error (the reader treats
// both as connection end — a half frame is never dispatched).
bool ReadFull(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

// MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE,
// not kill the process.
bool SendAll(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace

SofaServer::SofaServer(service::SearchService* service,
                       ingest::Compactor* compactor, ServerConfig config)
    : service_(service), compactor_(compactor), config_(std::move(config)),
      registry_(service->registry()) {
  SOFA_CHECK(service_ != nullptr);
  net_connections_ = registry_->GetCounter("sofa_net_connections_total", {},
                                           "TCP connections accepted");
  net_frames_received_ = registry_->GetCounter(
      "sofa_net_frames_received_total", {}, "Request frames received");
  net_frames_sent_ = registry_->GetCounter("sofa_net_frames_sent_total", {},
                                           "Response frames sent");
  net_protocol_errors_ = registry_->GetCounter(
      "sofa_net_protocol_errors_total", {},
      "Framing and payload decode failures");
  net_active_ = registry_->GetGauge("sofa_net_active_connections", {},
                                    "Currently open connections");
  hook_id_ = registry_->AddCollectHook([this] {
    net_connections_->Set(accepted_.load(std::memory_order_relaxed));
    net_frames_received_->Set(frames_received_.load(std::memory_order_relaxed));
    net_frames_sent_->Set(frames_sent_.load(std::memory_order_relaxed));
    net_protocol_errors_->Set(
        protocol_errors_.load(std::memory_order_relaxed));
    net_active_->Set(static_cast<double>(Stats().active_connections));
  });
}

SofaServer::~SofaServer() {
  Shutdown();
  registry_->RemoveCollectHook(hook_id_);
}

Status SofaServer::Start() {
  SOFA_CHECK(!started_) << "Start() may run once";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgumentError("unparseable host: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        IoError(std::string("bind ") + config_.host + ": " +
                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status status = IoError(std::string("listen: ") +
                                  std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void SofaServer::AcceptLoop() {
  while (!stop_accepting_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, 100 /*ms*/);
    if (ready <= 0) {
      continue;  // timeout tick (re-check the stop flag) or EINTR
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mutex_);
    ReapFinishedLocked();
    if (stop_accepting_.load(std::memory_order_acquire) ||
        connections_.size() >= config_.max_connections) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_.emplace_back(new Connection());
    Connection* conn = connections_.back().get();
    conn->fd = fd;
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
    conn->writer = std::thread([this, conn] { WriterLoop(conn); });
  }
}

void SofaServer::ReaderLoop(Connection* conn) {
  std::uint8_t header_bytes[kHeaderSize];
  while (ReadFull(conn->fd, header_bytes, kHeaderSize)) {
    FrameHeader header;
    Status status = DecodeHeader(header_bytes, kHeaderSize, &header);
    if (!status.ok()) {
      // The stream cannot be re-synchronized after a bad header — close.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    std::vector<std::uint8_t> payload(header.payload_size);
    if (!ReadFull(conn->fd, payload.data(), payload.size())) {
      break;  // truncated frame: peer died mid-send
    }
    status = VerifyPayload(header, payload.data(), payload.size());
    if (!status.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;  // bytes on the wire are not what the peer framed — close
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    PendingReply reply = Dispatch(header, payload);
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->queue.push_back(std::move(reply));
    }
    conn->cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->closing = true;
  }
  conn->cv.notify_one();
}

void SofaServer::WriterLoop(Connection* conn) {
  bool send_ok = true;
  while (true) {
    PendingReply reply;
    {
      std::unique_lock<std::mutex> lock(conn->mutex);
      conn->cv.wait(lock,
                    [conn] { return conn->closing || !conn->queue.empty(); });
      if (conn->queue.empty()) {
        break;  // closing and fully drained
      }
      reply = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    if (reply.is_search) {
      // Blocking on the future here (in queue order) is what keeps
      // responses ordered per connection while requests pipeline.
      service::SearchResponse response = reply.future.get();
      std::string trace_text;
      std::string trace_blob;
      if (reply.collect_trace && response.trace != nullptr) {
        trace_text = obs::FormatTrace(*response.trace);
        if (reply.version >= 2) {
          trace_blob = obs::SerializeTraceRecord(*response.trace);
        }
      }
      reply.payload =
          EncodeSearchResponse(response, Status(response.status), trace_text,
                               trace_blob, reply.version);
    }
    if (send_ok) {
      const std::vector<std::uint8_t> frame = EncodeFrame(
          reply.type, reply.request_id, reply.payload, reply.version);
      if (SendAll(conn->fd, frame.data(), frame.size())) {
        frames_sent_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Peer is gone; keep draining the queue so every SEARCH future
        // is consumed, but stop writing.
        send_ok = false;
      }
    }
  }
  // Full shutdown unblocks a reader still parked in recv (writer-side
  // failure case); harmless when the reader already exited. The fd is
  // close()d only after both threads are joined (reap/Shutdown) — never
  // while the reader could still be blocked on it.
  ::shutdown(conn->fd, SHUT_RDWR);
  closed_.fetch_add(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

SofaServer::PendingReply SofaServer::Dispatch(
    const FrameHeader& header, const std::vector<std::uint8_t>& payload) {
  switch (static_cast<MessageType>(header.type)) {
    case MessageType::kSearch: {
      PendingReply reply;
      reply.request_id = header.request_id;
      reply.type = header.type | kResponseBit;
      reply.version = header.version;
      service::SearchRequest request;
      const Status decoded =
          DecodeSearchRequest(payload.data(), payload.size(), &request);
      if (!decoded.ok() || request.k == 0) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        const Status status =
            decoded.ok() ? InvalidArgumentError("k must be >= 1") : decoded;
        reply.payload = EncodeSearchResponse(service::SearchResponse{}, status,
                                             "", "", header.version);
        return reply;
      }
      reply.is_search = true;
      reply.collect_trace = request.collect_trace;
      reply.future = service_->Submit(std::move(request));
      return reply;
    }
    case MessageType::kInsert:
      return HandleInsert(header, payload);
    case MessageType::kDelete:
      return HandleDelete(header, payload);
    case MessageType::kStats:
      return HandleStats(header, payload);
    case MessageType::kAdmin:
      return HandleAdmin(header, payload);
    default: {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      PendingReply reply;
      reply.request_id = header.request_id;
      reply.type = header.type | kResponseBit;
      reply.version = header.version;
      PayloadWriter writer;
      WriteStatus(&writer, ProtocolError("unknown message type"));
      reply.payload = writer.Take();
      return reply;
    }
  }
}

SofaServer::PendingReply SofaServer::HandleInsert(
    const FrameHeader& header, const std::vector<std::uint8_t>& payload) {
  PendingReply reply;
  reply.request_id = header.request_id;
  reply.type = header.type | kResponseBit;
  reply.version = header.version;
  std::vector<float> row;
  const Status decoded =
      DecodeInsertRequest(payload.data(), payload.size(), &row);
  if (!decoded.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    reply.payload = EncodeInsertResponse(decoded, 0);
    return reply;
  }
  if (compactor_ == nullptr) {
    reply.payload = EncodeInsertResponse(
        UnavailableError("server is read-only (no ingest attached)"), 0);
    return reply;
  }
  const StatusOr<std::uint32_t> inserted =
      compactor_->Insert(row.data(), row.size());
  reply.payload = EncodeInsertResponse(inserted.status(),
                                       inserted.ok() ? *inserted : 0);
  return reply;
}

SofaServer::PendingReply SofaServer::HandleDelete(
    const FrameHeader& header, const std::vector<std::uint8_t>& payload) {
  PendingReply reply;
  reply.request_id = header.request_id;
  reply.type = header.type | kResponseBit;
  reply.version = header.version;
  std::uint32_t id = 0;
  const Status decoded =
      DecodeDeleteRequest(payload.data(), payload.size(), &id);
  if (!decoded.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    reply.payload = EncodeDeleteResponse(decoded);
    return reply;
  }
  if (compactor_ == nullptr) {
    reply.payload = EncodeDeleteResponse(
        UnavailableError("server is read-only (no ingest attached)"));
    return reply;
  }
  reply.payload = EncodeDeleteResponse(compactor_->Delete(id));
  return reply;
}

SofaServer::PendingReply SofaServer::HandleStats(
    const FrameHeader& header, const std::vector<std::uint8_t>& payload) {
  PendingReply reply;
  reply.request_id = header.request_id;
  reply.type = header.type | kResponseBit;
  reply.version = header.version;
  StatsFormat format = StatsFormat::kJson;
  const Status decoded =
      DecodeStatsRequest(payload.data(), payload.size(), &format);
  if (!decoded.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    reply.payload = EncodeStatsResponse(decoded, "");
    return reply;
  }
  const std::vector<obs::InstrumentSnapshot> snapshot = registry_->Collect();
  std::string text;
  switch (format) {
    case StatsFormat::kJson:
      text = obs::RenderJson(snapshot);
      break;
    case StatsFormat::kPrometheus:
      text = obs::RenderPrometheus(snapshot);
      break;
    case StatsFormat::kPretty:
      text = obs::RenderPretty(snapshot);
      break;
  }
  reply.payload = EncodeStatsResponse(OkStatus(), text);
  return reply;
}

SofaServer::PendingReply SofaServer::HandleAdmin(
    const FrameHeader& header, const std::vector<std::uint8_t>& payload) {
  PendingReply reply;
  reply.request_id = header.request_id;
  reply.type = header.type | kResponseBit;
  reply.version = header.version;
  AdminOp op = AdminOp::kSwap;
  const Status decoded =
      DecodeAdminRequest(payload.data(), payload.size(), &op);
  if (!decoded.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    reply.payload = EncodeAdminResponse(decoded, 0);
    return reply;
  }
  Status status;
  std::uint64_t version = 0;
  switch (op) {
    case AdminOp::kCheckpoint:
      status = compactor_ != nullptr
                   ? compactor_->Checkpoint()
                   : UnavailableError("no ingest attached");
      break;
    case AdminOp::kPersist:
      status = compactor_ != nullptr
                   ? compactor_->PersistNow()
                   : UnavailableError("no ingest attached");
      break;
    case AdminOp::kCompact:
      if (compactor_ == nullptr) {
        status = UnavailableError("no ingest attached");
      } else {
        compactor_->Flush();
        status = OkStatus();
      }
      break;
    case AdminOp::kSwap:
      // Hot-swap republish: push the currently-live snapshot through
      // Publish so a new generation version takes effect (observable in
      // every later SEARCH response's index_version).
      version = service_->Publish(service_->snapshot());
      status = OkStatus();
      break;
  }
  reply.payload = EncodeAdminResponse(status, version);
  return reply;
}

void SofaServer::RequestDrain() {
  draining_.store(true, std::memory_order_release);
  stop_accepting_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(conn_mutex_);
  for (const auto& conn : connections_) {
    if (!conn->done.load(std::memory_order_acquire)) {
      // Half-close: the reader sees EOF after the bytes already received,
      // queued work finishes and responses still flush out.
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
}

bool SofaServer::Drained() const {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  for (const auto& conn : connections_) {
    if (!conn->done.load(std::memory_order_acquire)) {
      return false;
    }
  }
  return true;
}

void SofaServer::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      if ((*it)->writer.joinable()) (*it)->writer.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SofaServer::Shutdown() {
  if (!started_ || shut_down_) {
    return;
  }
  shut_down_ = true;
  RequestDrain();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::unique_ptr<Connection>> remaining;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    remaining.swap(connections_);
  }
  for (const auto& conn : remaining) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    ::close(conn->fd);
  }
}

ServerStats SofaServer::Stats() const {
  ServerStats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected = rejected_.load(std::memory_order_relaxed);
  stats.connections_closed = closed_.load(std::memory_order_relaxed);
  stats.frames_received = frames_received_.load(std::memory_order_relaxed);
  stats.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const auto& conn : connections_) {
      if (!conn->done.load(std::memory_order_acquire)) {
        ++stats.active_connections;
      }
    }
  }
  return stats;
}

}  // namespace net
}  // namespace sofa
