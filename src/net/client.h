// SofaClient — a blocking TCP client for the SOFA wire protocol.
//
// The synchronous calls (Search/Insert/Delete/Stats/Admin) each send one
// frame and wait for its response. For open-loop load generation the
// split SEARCH API (SendSearch / ReceiveSearchResponse) pipelines: send
// any number of requests, then collect responses — the server answers a
// connection's requests in order, and every response echoes its
// request_id.
//
// Error model, same split as the server:
//   * transport problems (connect refused, mid-stream EOF, framing or
//     CRC violations in the response) come back as the call's own
//     Status — kIoError / kProtocolError — and poison the connection
//     (every later call fails until Connect() again);
//   * application outcomes travel inside the response payload — a
//     SEARCH that was shed returns transport-ok with
//     response.status == kRejected, exactly like in-process Submit.
//
// Not thread-safe: one connection, one calling thread (or external
// serialization; the bench uses one client per worker).

#ifndef SOFA_NET_CLIENT_H_
#define SOFA_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "obs/trace.h"
#include "service/request.h"
#include "util/status.h"

namespace sofa {
namespace net {

/// Client-side view of a traced SEARCH round trip (request sent with
/// collect_trace against a v2 server).
///
/// `server` is the server's TraceRecord exactly as the service finished
/// it — span for span, counter for counter — decoded from the response's
/// structured trace section. `joined` is one end-to-end timeline in the
/// client's clock: the client spans (serialize, send, server_queue,
/// receive, decode) plus the server's spans re-based under a "server"
/// span. The server window is anchored by the request_id echo: the
/// response's server-measured latency is placed inside the client's
/// send-to-receive gap, and whatever gap remains is the server_queue
/// span (wire + server-side framing and response queueing — everything
/// outside the service's own measurement).
struct WireTrace {
  bool has_server_trace = false;
  obs::TraceRecord server;
  obs::TraceRecord joined;
};

class SofaClient {
 public:
  SofaClient() = default;
  ~SofaClient();

  SofaClient(const SofaClient&) = delete;
  SofaClient& operator=(const SofaClient&) = delete;

  Status Connect(const std::string& host, std::uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One k-NN round trip. Transport-ok even when the server shed or
  /// failed the query — inspect out->status. The rendered trace (when
  /// the request set collect_trace) and the server's status message come
  /// back through the optional out-params. With collect_trace against a
  /// v2 server, out->trace carries the decoded server TraceRecord and
  /// `wire_trace` (when non-null) the client-joined timeline.
  Status Search(const service::SearchRequest& request,
                service::SearchResponse* out,
                std::string* trace_text = nullptr,
                std::string* message = nullptr,
                WireTrace* wire_trace = nullptr);

  /// Pipelined SEARCH: send without waiting. Returns the request_id to
  /// match against ReceiveSearchResponse. Traced sends (collect_trace)
  /// record their serialize/send timing keyed by request_id, so the
  /// joined timeline is correct even with many requests in flight.
  Status SendSearch(const service::SearchRequest& request,
                    std::uint64_t* request_id);

  /// Blocks for the next SEARCH response on this connection.
  Status ReceiveSearchResponse(std::uint64_t* request_id,
                               service::SearchResponse* out,
                               std::string* trace_text = nullptr,
                               std::string* message = nullptr,
                               WireTrace* wire_trace = nullptr);

  /// Inserts one row; the value is the server-assigned global id.
  StatusOr<std::uint32_t> Insert(const std::vector<float>& row);

  /// Deletes by global id (kAlreadyDeleted / kNotFound as in-process).
  Status Delete(std::uint32_t id);

  /// A rendered stats dump from the server's registry.
  StatusOr<std::string> Stats(StatsFormat format = StatsFormat::kJson);

  /// Admin surface; the value is the resulting index version (kSwap) or
  /// 0 for the other ops.
  StatusOr<std::uint64_t> Admin(AdminOp op);

 private:
  /// Sends `payload` as a `type` frame and reads the matching response
  /// frame (type | kResponseBit, same request_id).
  Status Call(MessageType type, const std::vector<std::uint8_t>& payload,
              std::vector<std::uint8_t>* response_payload);
  Status SendFrame(MessageType type, std::uint64_t request_id,
                   const std::vector<std::uint8_t>& payload);
  Status ReadFrame(FrameHeader* header, std::vector<std::uint8_t>* payload);

  /// Send-side timing of a traced request still awaiting its response.
  /// Times are milliseconds in the client clock, zeroed at the start of
  /// request serialization.
  struct SendTiming {
    std::chrono::steady_clock::time_point origin;
    double serialize_end_ms = 0.0;
    double send_end_ms = 0.0;
  };

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::unordered_map<std::uint64_t, SendTiming> traced_sends_;
};

}  // namespace net
}  // namespace sofa

#endif  // SOFA_NET_CLIENT_H_
