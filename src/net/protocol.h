// The SOFA binary wire protocol: length-prefixed, CRC-framed, versioned
// frames over a byte stream (TCP). docs/PROTOCOL.md is the normative
// byte-level spec; this header is its implementation. Everything is
// little-endian.
//
// Frame = 24-byte header + payload:
//
//   offset  size  field
//   0       4     magic 0x41464F53 ("SOFA" as LE bytes)
//   4       1     version (kMinProtocolVersion..kProtocolVersion)
//   5       1     type (MessageType; responses set kResponseBit)
//   6       2     flags (reserved, 0)
//   8       8     request_id (echoed verbatim in the response)
//   16      4     payload_size (bytes after the header)
//   20      4     payload_crc32 (IEEE CRC-32 of the payload bytes)
//
// The payload codecs below serialize exactly the wire fields of the
// transport-neutral request/response structs (service/request.h) — the
// in-process-only members (absolute deadline, shared trace handle) never
// cross the wire. Every response payload begins with a u16 StatusCode +
// length-prefixed message, so error vocabulary is identical on both
// transports. Decoders never trust a length field: every read is
// bounds-checked and a short/corrupt payload decodes to kProtocolError,
// not a crash.

#ifndef SOFA_NET_PROTOCOL_H_
#define SOFA_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "service/request.h"
#include "util/status.h"

namespace sofa {
namespace net {

constexpr std::uint32_t kMagic = 0x41464F53u;  // "SOFA" little-endian

/// v1: original frame set. v2: SEARCH responses carry the full
/// 10-counter profile (rowq tier included) plus the serialized trace
/// blob (obs/trace_serde.h). Servers accept both versions and answer
/// each request at the version it arrived with; clients speak the
/// newest. See docs/PROTOCOL.md, "Versioning".
constexpr std::uint8_t kProtocolVersion = 2;
constexpr std::uint8_t kMinProtocolVersion = 1;
constexpr std::size_t kHeaderSize = 24;

/// Refuse absurd frames before allocating: queries and stats dumps fit
/// comfortably; anything larger is a corrupt or hostile length field.
constexpr std::uint32_t kMaxPayloadSize = 64u << 20;  // 64 MiB

/// Request kinds. A response echoes the request's type with kResponseBit
/// set.
enum class MessageType : std::uint8_t {
  kSearch = 1,
  kInsert = 2,
  kDelete = 3,
  kStats = 4,
  kAdmin = 5,
};

constexpr std::uint8_t kResponseBit = 0x80;

/// Admin surface operations (ADMIN request payload).
enum class AdminOp : std::uint8_t {
  kCheckpoint = 1,  // Compactor::Checkpoint() — WAL checkpoint + truncate
  kPersist = 2,     // Compactor::PersistNow() — generation store commit
  kCompact = 3,     // Compactor::Flush() — fold pending mutations in
  kSwap = 4,        // republish the current generation (version bump)
};

/// STATS dump formats.
enum class StatsFormat : std::uint8_t {
  kJson = 0,
  kPrometheus = 1,
  kPretty = 2,
};

struct FrameHeader {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t type = 0;
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc32 = 0;
};

/// Serializes `header` into exactly kHeaderSize bytes at `out`.
void EncodeHeader(const FrameHeader& header, std::uint8_t* out);

/// Parses and validates a header (magic, supported version range,
/// payload bound). `size` must be at least kHeaderSize; out->version
/// reports the peer's actual version (1 or 2).
Status DecodeHeader(const std::uint8_t* data, std::size_t size,
                    FrameHeader* out);

/// One complete frame: header (with computed CRC) + payload. `version`
/// lets a server answer a v1 peer with v1 frames.
std::vector<std::uint8_t> EncodeFrame(std::uint8_t type,
                                      std::uint64_t request_id,
                                      const std::vector<std::uint8_t>& payload,
                                      std::uint8_t version = kProtocolVersion);

/// CRC check of a received payload against its header.
Status VerifyPayload(const FrameHeader& header, const std::uint8_t* payload,
                     std::size_t size);

// ---- bounds-checked little-endian payload primitives ----

/// Append-only payload builder.
class PayloadWriter {
 public:
  void U8(std::uint8_t v) { bytes_.push_back(v); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void F32(float v);
  void F64(double v);
  /// u16 length + raw bytes (tenants, short strings; ≤ 65535 bytes).
  void SmallString(const std::string& s);
  /// u32 length + raw bytes (stats dumps, trace text).
  void String(const std::string& s);
  /// u32 count + packed f32s.
  void FloatVector(const std::vector<float>& v);

  std::vector<std::uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Cursor over a received payload; every getter returns false once the
/// payload is exhausted (and never reads past the end), so decoders can
/// thread a single failure path.
class PayloadReader {
 public:
  PayloadReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool U8(std::uint8_t* v);
  bool U16(std::uint16_t* v);
  bool U32(std::uint32_t* v);
  bool U64(std::uint64_t* v);
  bool F32(float* v);
  bool F64(double* v);
  bool SmallString(std::string* s);
  bool String(std::string* s);
  bool FloatVector(std::vector<float>* v);

  /// All bytes consumed (trailing garbage is a protocol error).
  bool AtEnd() const { return pos_ == size_; }

 private:
  bool Raw(void* out, std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- message payload codecs (wire fields only) ----

/// SEARCH request: k, epsilon, priority, collect bits, deadline_ms,
/// tenant, query.
std::vector<std::uint8_t> EncodeSearchRequest(
    const service::SearchRequest& request);
Status DecodeSearchRequest(const std::uint8_t* data, std::size_t size,
                           service::SearchRequest* out);

/// SEARCH response: status + message, index_version, latency_ms,
/// neighbors, profile, rendered trace text. At `version` >= 2 the
/// profile includes the rowq tier counters and the payload ends with a
/// structured trace section: `trace_blob` is a SerializeTraceRecord
/// blob, or empty for "no trace" (obs/trace_serde.h). At version 1 the
/// layout is byte-identical to the original protocol — the rowq
/// counters and the blob never reach a v1 peer.
std::vector<std::uint8_t> EncodeSearchResponse(
    const service::SearchResponse& response, const Status& status,
    const std::string& trace_text, const std::string& trace_blob = std::string(),
    std::uint8_t version = kProtocolVersion);
Status DecodeSearchResponse(const std::uint8_t* data, std::size_t size,
                            service::SearchResponse* out,
                            std::string* message, std::string* trace_text,
                            std::string* trace_blob = nullptr,
                            std::uint8_t version = kProtocolVersion);

/// INSERT request: the row. Response: status + message + assigned id.
std::vector<std::uint8_t> EncodeInsertRequest(const std::vector<float>& row);
Status DecodeInsertRequest(const std::uint8_t* data, std::size_t size,
                           std::vector<float>* row);
std::vector<std::uint8_t> EncodeInsertResponse(const Status& status,
                                               std::uint32_t id);
Status DecodeInsertResponse(const std::uint8_t* data, std::size_t size,
                            Status* status, std::uint32_t* id);

/// DELETE request: the id. Response: status + message.
std::vector<std::uint8_t> EncodeDeleteRequest(std::uint32_t id);
Status DecodeDeleteRequest(const std::uint8_t* data, std::size_t size,
                           std::uint32_t* id);
std::vector<std::uint8_t> EncodeDeleteResponse(const Status& status);
Status DecodeDeleteResponse(const std::uint8_t* data, std::size_t size,
                            Status* status);

/// STATS request: the format. Response: status + message + rendered text.
std::vector<std::uint8_t> EncodeStatsRequest(StatsFormat format);
Status DecodeStatsRequest(const std::uint8_t* data, std::size_t size,
                          StatsFormat* format);
std::vector<std::uint8_t> EncodeStatsResponse(const Status& status,
                                              const std::string& text);
Status DecodeStatsResponse(const std::uint8_t* data, std::size_t size,
                           Status* status, std::string* text);

/// ADMIN request: the op. Response: status + message + resulting index
/// version (kSwap; 0 otherwise).
std::vector<std::uint8_t> EncodeAdminRequest(AdminOp op);
Status DecodeAdminRequest(const std::uint8_t* data, std::size_t size,
                          AdminOp* op);
std::vector<std::uint8_t> EncodeAdminResponse(const Status& status,
                                              std::uint64_t version);
Status DecodeAdminResponse(const std::uint8_t* data, std::size_t size,
                           Status* status, std::uint64_t* version);

/// Shared head of every response payload: u16 code + small message.
void WriteStatus(PayloadWriter* writer, const Status& status);
bool ReadStatus(PayloadReader* reader, Status* status);

}  // namespace net
}  // namespace sofa

#endif  // SOFA_NET_PROTOCOL_H_
