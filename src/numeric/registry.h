// Factory for the full related-work comparison set at one (n, l) budget.

#ifndef SOFA_NUMERIC_REGISTRY_H_
#define SOFA_NUMERIC_REGISTRY_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "numeric/numeric_summary.h"

namespace sofa {
namespace numeric {

/// Builds one summary by name ("PAA", "APCA", "PLA", "CHEBY", "DFT",
/// "DHWT"; case-insensitive) for length-n series at a budget of l stored
/// floats. Aborts on unknown names or infeasible (n, l) combinations.
std::unique_ptr<NumericSummary> MakeNumericSummary(const std::string& name,
                                                   std::size_t n,
                                                   std::size_t l);

/// The Section III comparison set, in the fixed report order
/// PAA, APCA, PLA, CHEBY, DHWT, DFT — every method at the same l-float
/// budget, the apples-to-apples framing of Schäfer & Högqvist [14].
std::vector<std::unique_ptr<NumericSummary>> MakeComparisonSet(std::size_t n,
                                                               std::size_t l);

}  // namespace numeric
}  // namespace sofa

#endif  // SOFA_NUMERIC_REGISTRY_H_
