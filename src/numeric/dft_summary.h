// DFT as a real-valued GEMINI summarization (Agrawal et al. [13],
// Rafiei & Mendelzon [52]).
//
// Projection: the first complex Fourier coefficients of the 1/√n-normalized
// real DFT, stored as interleaved (re, im) floats starting at k = 1 — for
// z-normalized series c_0 (the mean) is zero and is skipped, exactly as the
// paper's Eq. 1 omits the first term. Lower bound (Parseval):
//
//   LBD²(Q, C) = Σ_k w_k · |q_k − c_k|²,   w_k = 2 (1 for Nyquist),
//
// which is Eq. 1 restricted to the kept coefficients. DFT is the strongest
// numeric method in the Schäfer & Högqvist comparison the paper cites; SFA
// is its quantized little sibling, so DFT's TLB is the upper envelope the
// SFA ablations (Tables V/VI) converge to with growing alphabets.

#ifndef SOFA_NUMERIC_DFT_SUMMARY_H_
#define SOFA_NUMERIC_DFT_SUMMARY_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "dft/real_dft.h"
#include "numeric/numeric_summary.h"
#include "util/aligned.h"

namespace sofa {
namespace numeric {

/// First-coefficients DFT summarization with the Parseval lower bound.
class DftSummary : public NumericSummary {
 public:
  /// Plans a DFT summary of length-n series keeping num_values floats =
  /// num_values/2 complex coefficients k = 1 … num_values/2 (num_values
  /// even, num_values/2 ≤ ⌊n/2⌋).
  DftSummary(std::size_t n, std::size_t num_values);

  /// Plans a DFT summary keeping the explicit coefficient indices `ks`
  /// (each in 1 … ⌊n/2⌋, distinct) instead of the leading band — the
  /// un-quantized core of the paper's variance-based selection
  /// (Section IV-E2). Reported as "DFT +VAR".
  DftSummary(std::size_t n, const std::vector<std::size_t>& ks);

  /// Learns the `count` highest-variance coefficient indices of `data`
  /// (variance of re plus variance of im per index k ≥ 1), the numeric
  /// analogue of MCB's K-ARGMAX(VAR(DFT(D))) feature selection.
  static std::vector<std::size_t> SelectByVariance(const Dataset& data,
                                                   std::size_t count);

  std::string name() const override {
    return first_band_ ? "DFT" : "DFT +VAR";
  }
  std::size_t series_length() const override { return n_; }
  std::size_t num_values() const override { return 2 * ks_.size(); }

  /// Kept coefficient indices, in storage order.
  const std::vector<std::size_t>& kept_coefficients() const { return ks_; }

  void Project(const float* series, float* values_out) const override;
  void Reconstruct(const float* values, float* series_out) const override;

  std::unique_ptr<QueryState> NewQueryState() const override;
  void PrepareQuery(const float* query, QueryState* state) const override;
  float LowerBoundSquared(const QueryState& state,
                          const float* candidate_values) const override;

 private:
  void InitWeights();

  std::size_t n_;
  bool first_band_;
  std::vector<std::size_t> ks_;  // kept coefficient indices, each ≥ 1
  dft::RealDftPlan plan_;
  AlignedVector<float> weights_;  // Parseval weight per stored float
};

}  // namespace numeric
}  // namespace sofa

#endif  // SOFA_NUMERIC_DFT_SUMMARY_H_
