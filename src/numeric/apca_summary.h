// APCA — Adaptive Piecewise Constant Approximation (Chakrabarti et al.
// [29]) as a real-valued GEMINI summarization.
//
// Projection: l/2 variable-length segments, each stored as a (mean,
// right-boundary) pair. Segmentation is bottom-up merging: start from unit
// segments and repeatedly merge the adjacent pair with the smallest SSE
// increase until l/2 segments remain. (The original paper seeds the
// segmentation from the largest Haar coefficients as a speed heuristic;
// bottom-up merging reaches equal or lower SSE at the same O(n log n) cost
// on in-memory series — noted as a substitution in DESIGN.md.)
//
// Lower bound (the whole-matching D_LB of [29]): the raw query is
// re-projected onto each candidate's segmentation — q̄_i is the query mean
// over candidate segment i, computed O(1) per segment from prefix sums —
// then
//
//   LBD²(Q, C) = Σ_i len_i · (q̄_i − c̄_i)².
//
// Both (q̄_i) and (c̄_i) are orthogonal projections onto the series
// piecewise-constant on C's segmentation, so the bound is exact GEMINI.
// This is why APCA appears in this interface's asymmetric form: its LBD
// cannot be computed from two independent projections.

#ifndef SOFA_NUMERIC_APCA_SUMMARY_H_
#define SOFA_NUMERIC_APCA_SUMMARY_H_

#include <cstddef>
#include <memory>
#include <string>

#include "numeric/numeric_summary.h"

namespace sofa {
namespace numeric {

/// APCA summarization: l/2 adaptive (mean, right-boundary) segments.
class ApcaSummary : public NumericSummary {
 public:
  /// Plans APCA over length-n series storing num_values floats =
  /// num_values/2 segments (num_values even, 2 ≤ num_values ≤ 2n).
  ApcaSummary(std::size_t n, std::size_t num_values);

  std::string name() const override { return "APCA"; }
  std::size_t series_length() const override { return n_; }
  std::size_t num_values() const override { return 2 * segments_; }

  /// values_out = [mean_0, end_0, mean_1, end_1, …]; boundaries are
  /// exclusive end offsets, strictly increasing, last one = n.
  void Project(const float* series, float* values_out) const override;
  void Reconstruct(const float* values, float* series_out) const override;

  std::unique_ptr<QueryState> NewQueryState() const override;
  void PrepareQuery(const float* query, QueryState* state) const override;
  float LowerBoundSquared(const QueryState& state,
                          const float* candidate_values) const override;

 private:
  std::size_t n_;
  std::size_t segments_;
};

}  // namespace numeric
}  // namespace sofa

#endif  // SOFA_NUMERIC_APCA_SUMMARY_H_
