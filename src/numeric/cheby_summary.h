// Chebyshev polynomials (Cai & Ng [31]) as a real-valued GEMINI
// summarization.
//
// Projection: the series, viewed over the grid x_t = −1 + (2t+1)/n, is
// projected onto the first l Chebyshev polynomials T_0 … T_{l−1}. Cai & Ng
// work with the continuous Chebyshev inner product; for discrete series the
// T_j are not exactly orthogonal under the plain dot product, so the plan
// orthonormalizes them once (modified Gram–Schmidt in double precision).
// The projection coefficients are then coordinates in an orthonormal set,
// and Bessel's inequality gives the bound
//
//   LBD²(Q, C) = Σ_j (q_j − c_j)² ≤ ED²(Q, C).
//
// Reconstruction is the same basis transposed (the least-squares
// polynomial of degree < l).

#ifndef SOFA_NUMERIC_CHEBY_SUMMARY_H_
#define SOFA_NUMERIC_CHEBY_SUMMARY_H_

#include <cstddef>
#include <memory>
#include <string>

#include "numeric/numeric_summary.h"
#include "util/aligned.h"

namespace sofa {
namespace numeric {

/// Chebyshev-polynomial summarization (orthonormalized, Bessel bound).
class ChebySummary : public NumericSummary {
 public:
  /// Plans a degree-(num_values−1) Chebyshev summary of length-n series
  /// (0 < num_values ≤ n).
  ChebySummary(std::size_t n, std::size_t num_values);

  std::string name() const override { return "CHEBY"; }
  std::size_t series_length() const override { return n_; }
  std::size_t num_values() const override { return l_; }

  void Project(const float* series, float* values_out) const override;
  void Reconstruct(const float* values, float* series_out) const override;

  std::unique_ptr<QueryState> NewQueryState() const override;
  void PrepareQuery(const float* query, QueryState* state) const override;
  float LowerBoundSquared(const QueryState& state,
                          const float* candidate_values) const override;

  /// Row j of the orthonormal basis (length n) — exposed for tests.
  const float* basis_row(std::size_t j) const {
    return basis_.data() + j * n_;
  }

 private:
  std::size_t n_;
  std::size_t l_;
  AlignedVector<float> basis_;  // l_ × n_, rows orthonormal
};

}  // namespace numeric
}  // namespace sofa

#endif  // SOFA_NUMERIC_CHEBY_SUMMARY_H_
