#include "numeric/registry.h"

#include <algorithm>
#include <cctype>

#include "numeric/apca_summary.h"
#include "numeric/cheby_summary.h"
#include "numeric/dft_summary.h"
#include "numeric/haar_summary.h"
#include "numeric/paa_summary.h"
#include "numeric/pla_summary.h"
#include "util/check.h"

namespace sofa {
namespace numeric {

std::unique_ptr<NumericSummary> MakeNumericSummary(const std::string& name,
                                                   std::size_t n,
                                                   std::size_t l) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "PAA") {
    return std::make_unique<PaaSummary>(n, l);
  }
  if (upper == "APCA") {
    return std::make_unique<ApcaSummary>(n, l);
  }
  if (upper == "PLA") {
    return std::make_unique<PlaSummary>(n, l);
  }
  if (upper == "CHEBY") {
    return std::make_unique<ChebySummary>(n, l);
  }
  if (upper == "DFT") {
    return std::make_unique<DftSummary>(n, l);
  }
  if (upper == "DHWT" || upper == "HAAR") {
    return std::make_unique<HaarSummary>(n, l);
  }
  SOFA_CHECK(false) << "unknown numeric summary '" << name << "'";
  return nullptr;
}

std::vector<std::unique_ptr<NumericSummary>> MakeComparisonSet(
    std::size_t n, std::size_t l) {
  std::vector<std::unique_ptr<NumericSummary>> set;
  for (const char* name : {"PAA", "APCA", "PLA", "CHEBY", "DHWT", "DFT"}) {
    set.push_back(MakeNumericSummary(name, n, l));
  }
  return set;
}

}  // namespace numeric
}  // namespace sofa
