#include "numeric/dft_summary.h"

#include <algorithm>
#include <complex>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace sofa {
namespace numeric {

namespace {

class DftQueryState : public NumericSummary::QueryState {
 public:
  dft::RealDftPlan::Scratch scratch;
  std::vector<std::complex<float>> coeffs;
  std::vector<float> values;
};

}  // namespace

DftSummary::DftSummary(std::size_t n, std::size_t num_values)
    : n_(n), first_band_(true), plan_(n) {
  SOFA_CHECK(num_values >= 2 && num_values % 2 == 0)
      << "DFT summary stores (re, im) pairs; num_values=" << num_values;
  SOFA_CHECK(num_values / 2 + 1 <= plan_.num_coefficients())
      << "only " << plan_.num_coefficients() - 1
      << " non-DC coefficients exist for n=" << n;
  ks_.resize(num_values / 2);
  std::iota(ks_.begin(), ks_.end(), std::size_t{1});
  InitWeights();
}

DftSummary::DftSummary(std::size_t n, const std::vector<std::size_t>& ks)
    : n_(n), first_band_(false), ks_(ks), plan_(n) {
  SOFA_CHECK(!ks_.empty());
  for (const std::size_t k : ks_) {
    SOFA_CHECK(k >= 1 && k < plan_.num_coefficients())
        << "coefficient index " << k << " out of range for n=" << n;
  }
  std::vector<std::size_t> sorted(ks_);
  std::sort(sorted.begin(), sorted.end());
  SOFA_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) ==
             sorted.end())
      << "duplicate coefficient index";
  InitWeights();
}

void DftSummary::InitWeights() {
  weights_.resize(2 * ks_.size());
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    const float w = plan_.IsUnpaired(ks_[i]) ? 1.0f : 2.0f;
    weights_[2 * i] = w;
    weights_[2 * i + 1] = w;
  }
}

std::vector<std::size_t> DftSummary::SelectByVariance(const Dataset& data,
                                                      std::size_t count) {
  SOFA_CHECK(!data.empty());
  dft::RealDftPlan plan(data.length());
  const std::size_t num_coeffs = plan.num_coefficients();
  SOFA_CHECK(count >= 1 && count < num_coeffs)
      << "cannot select " << count << " of " << num_coeffs - 1
      << " non-DC coefficients";

  // Streaming mean/M2 per (k, re|im) in double precision (Welford).
  std::vector<double> mean(2 * num_coeffs, 0.0);
  std::vector<double> m2(2 * num_coeffs, 0.0);
  dft::RealDftPlan::Scratch scratch;
  std::vector<std::complex<float>> coeffs(num_coeffs);
  for (std::size_t i = 0; i < data.size(); ++i) {
    plan.Transform(data.row(i), coeffs.data(), &scratch);
    const double inv = 1.0 / static_cast<double>(i + 1);
    for (std::size_t k = 0; k < num_coeffs; ++k) {
      for (std::size_t part = 0; part < 2; ++part) {
        const double x = part == 0 ? coeffs[k].real() : coeffs[k].imag();
        const double delta = x - mean[2 * k + part];
        mean[2 * k + part] += delta * inv;
        m2[2 * k + part] += delta * (x - mean[2 * k + part]);
      }
    }
  }

  std::vector<std::size_t> ks(num_coeffs - 1);
  std::iota(ks.begin(), ks.end(), std::size_t{1});
  std::stable_sort(ks.begin(), ks.end(),
                   [&m2](std::size_t a, std::size_t b) {
                     return m2[2 * a] + m2[2 * a + 1] >
                            m2[2 * b] + m2[2 * b + 1];
                   });
  ks.resize(count);
  std::sort(ks.begin(), ks.end());  // canonical storage order
  return ks;
}

void DftSummary::Project(const float* series, float* values_out) const {
  dft::RealDftPlan::Scratch scratch;
  std::vector<std::complex<float>> coeffs(plan_.num_coefficients());
  plan_.Transform(series, coeffs.data(), &scratch);
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    values_out[2 * i] = coeffs[ks_[i]].real();
    values_out[2 * i + 1] = coeffs[ks_[i]].imag();
  }
}

void DftSummary::Reconstruct(const float* values, float* series_out) const {
  // Unkept coefficients (including DC) are zero — the least-squares
  // reconstruction from the stored band.
  std::vector<std::complex<float>> coeffs(plan_.num_coefficients(),
                                          std::complex<float>(0.0f, 0.0f));
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    coeffs[ks_[i]] =
        std::complex<float>(values[2 * i], values[2 * i + 1]);
  }
  dft::RealDftPlan::Scratch scratch;
  plan_.InverseTransform(coeffs.data(), series_out, &scratch);
}

std::unique_ptr<NumericSummary::QueryState> DftSummary::NewQueryState()
    const {
  auto state = std::make_unique<DftQueryState>();
  state->coeffs.resize(plan_.num_coefficients());
  state->values.resize(num_values());
  return state;
}

void DftSummary::PrepareQuery(const float* query, QueryState* state) const {
  auto* dft_state = static_cast<DftQueryState*>(state);
  plan_.Transform(query, dft_state->coeffs.data(), &dft_state->scratch);
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    dft_state->values[2 * i] = dft_state->coeffs[ks_[i]].real();
    dft_state->values[2 * i + 1] = dft_state->coeffs[ks_[i]].imag();
  }
}

float DftSummary::LowerBoundSquared(const QueryState& state,
                                    const float* candidate_values) const {
  const auto& dft_state = static_cast<const DftQueryState&>(state);
  double sum = 0.0;
  for (std::size_t i = 0; i < 2 * ks_.size(); ++i) {
    const double diff =
        static_cast<double>(dft_state.values[i]) - candidate_values[i];
    sum += weights_[i] * diff * diff;
  }
  return static_cast<float>(sum);
}

}  // namespace numeric
}  // namespace sofa
