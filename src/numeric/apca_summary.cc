#include "numeric/apca_summary.h"

#include <cstdint>
#include <queue>
#include <vector>

#include "util/check.h"

namespace sofa {
namespace numeric {

namespace {

class ApcaQueryState : public NumericSummary::QueryState {
 public:
  std::vector<double> prefix;  // prefix[t] = Σ_{u<t} query[u]
};

// Live segment during bottom-up merging. Means and merge costs derive from
// (count, sum) alone: merging neighbors a, b raises the total SSE by
// count_a·count_b/(count_a+count_b) · (mean_a − mean_b)².
struct Segment {
  std::size_t count = 0;
  double sum = 0.0;
  std::int64_t prev = -1;
  std::int64_t next = -1;
  std::uint32_t version = 0;  // bumped on every change; stale heap entries skip
  bool alive = false;
};

struct MergeEntry {
  double cost;
  std::size_t left;        // merge segment `left` with its `next`
  std::uint32_t lversion;  // versions at push time
  std::uint32_t rversion;

  bool operator>(const MergeEntry& other) const { return cost > other.cost; }
};

double MergeCost(const Segment& a, const Segment& b) {
  const double mean_a = a.sum / static_cast<double>(a.count);
  const double mean_b = b.sum / static_cast<double>(b.count);
  const double diff = mean_a - mean_b;
  return static_cast<double>(a.count) * static_cast<double>(b.count) /
         static_cast<double>(a.count + b.count) * diff * diff;
}

}  // namespace

ApcaSummary::ApcaSummary(std::size_t n, std::size_t num_values)
    : n_(n), segments_(num_values / 2) {
  SOFA_CHECK(num_values >= 2 && num_values % 2 == 0)
      << "APCA stores (mean, boundary) pairs; num_values=" << num_values;
  SOFA_CHECK(segments_ <= n)
      << "more segments (" << segments_ << ") than points (" << n << ")";
}

void ApcaSummary::Project(const float* series, float* values_out) const {
  std::vector<Segment> segs(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    segs[i].count = 1;
    segs[i].sum = series[i];
    segs[i].prev = static_cast<std::int64_t>(i) - 1;
    segs[i].next = (i + 1 < n_) ? static_cast<std::int64_t>(i + 1) : -1;
    segs[i].alive = true;
  }

  std::priority_queue<MergeEntry, std::vector<MergeEntry>,
                      std::greater<MergeEntry>>
      heap;
  for (std::size_t i = 0; i + 1 < n_; ++i) {
    heap.push({MergeCost(segs[i], segs[i + 1]), i, 0, 0});
  }

  std::size_t live = n_;
  while (live > segments_) {
    SOFA_DCHECK(!heap.empty());
    const MergeEntry entry = heap.top();
    heap.pop();
    Segment& left = segs[entry.left];
    if (!left.alive || left.next < 0 ||
        left.version != entry.lversion ||
        segs[left.next].version != entry.rversion) {
      continue;  // stale entry — one endpoint changed since it was pushed
    }
    Segment& right = segs[static_cast<std::size_t>(left.next)];
    left.count += right.count;
    left.sum += right.sum;
    left.version++;
    left.next = right.next;
    right.alive = false;
    right.version++;
    if (left.next >= 0) {
      segs[static_cast<std::size_t>(left.next)].prev =
          static_cast<std::int64_t>(entry.left);
      heap.push({MergeCost(left, segs[static_cast<std::size_t>(left.next)]),
                 entry.left, left.version,
                 segs[static_cast<std::size_t>(left.next)].version});
    }
    if (left.prev >= 0) {
      const auto prev = static_cast<std::size_t>(left.prev);
      heap.push({MergeCost(segs[prev], left), prev, segs[prev].version,
                 left.version});
    }
    --live;
  }

  std::size_t out = 0;
  std::size_t end = 0;
  for (std::int64_t i = 0; i >= 0; i = segs[static_cast<std::size_t>(i)].next) {
    const Segment& seg = segs[static_cast<std::size_t>(i)];
    end += seg.count;
    values_out[2 * out] =
        static_cast<float>(seg.sum / static_cast<double>(seg.count));
    values_out[2 * out + 1] = static_cast<float>(end);
    ++out;
  }
  SOFA_DCHECK(out == segments_ && end == n_);
}

void ApcaSummary::Reconstruct(const float* values, float* series_out) const {
  std::size_t begin = 0;
  for (std::size_t i = 0; i < segments_; ++i) {
    const auto end = static_cast<std::size_t>(values[2 * i + 1]);
    for (std::size_t t = begin; t < end; ++t) {
      series_out[t] = values[2 * i];
    }
    begin = end;
  }
}

std::unique_ptr<NumericSummary::QueryState> ApcaSummary::NewQueryState()
    const {
  auto state = std::make_unique<ApcaQueryState>();
  state->prefix.resize(n_ + 1);
  return state;
}

void ApcaSummary::PrepareQuery(const float* query, QueryState* state) const {
  auto* apca_state = static_cast<ApcaQueryState*>(state);
  apca_state->prefix[0] = 0.0;
  for (std::size_t t = 0; t < n_; ++t) {
    apca_state->prefix[t + 1] = apca_state->prefix[t] + query[t];
  }
}

float ApcaSummary::LowerBoundSquared(const QueryState& state,
                                     const float* candidate_values) const {
  const auto& apca_state = static_cast<const ApcaQueryState&>(state);
  double sum = 0.0;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < segments_; ++i) {
    const auto end = static_cast<std::size_t>(candidate_values[2 * i + 1]);
    const auto len = static_cast<double>(end - begin);
    const double query_mean =
        (apca_state.prefix[end] - apca_state.prefix[begin]) / len;
    const double diff = query_mean - candidate_values[2 * i];
    sum += len * diff * diff;
    begin = end;
  }
  return static_cast<float>(sum);
}

}  // namespace numeric
}  // namespace sofa
