#include "numeric/cheby_summary.h"

#include <cmath>
#include <vector>

#include "util/check.h"

namespace sofa {
namespace numeric {

namespace {

class ChebyQueryState : public NumericSummary::QueryState {
 public:
  std::vector<float> values;
};

}  // namespace

ChebySummary::ChebySummary(std::size_t n, std::size_t num_values)
    : n_(n), l_(num_values) {
  SOFA_CHECK(num_values > 0 && num_values <= n)
      << "Chebyshev needs 0 < l <= n, got l=" << num_values << " n=" << n;

  // Chebyshev recurrence T_{j+1}(x) = 2x·T_j(x) − T_{j−1}(x) on the
  // midpoint grid, in double precision.
  std::vector<double> rows(l_ * n_);
  std::vector<double> grid(n_);
  for (std::size_t t = 0; t < n_; ++t) {
    grid[t] = -1.0 + (2.0 * static_cast<double>(t) + 1.0) /
                         static_cast<double>(n_);
  }
  for (std::size_t t = 0; t < n_; ++t) {
    rows[t] = 1.0;
  }
  if (l_ > 1) {
    for (std::size_t t = 0; t < n_; ++t) {
      rows[n_ + t] = grid[t];
    }
  }
  for (std::size_t j = 2; j < l_; ++j) {
    for (std::size_t t = 0; t < n_; ++t) {
      rows[j * n_ + t] = 2.0 * grid[t] * rows[(j - 1) * n_ + t] -
                         rows[(j - 2) * n_ + t];
    }
  }

  // Modified Gram–Schmidt against the plain dot product. Degree-j
  // polynomials over n > j distinct points are linearly independent, so no
  // row collapses.
  for (std::size_t j = 0; j < l_; ++j) {
    double* row = rows.data() + j * n_;
    for (std::size_t k = 0; k < j; ++k) {
      const double* prev = rows.data() + k * n_;
      double dot = 0.0;
      for (std::size_t t = 0; t < n_; ++t) {
        dot += row[t] * prev[t];
      }
      for (std::size_t t = 0; t < n_; ++t) {
        row[t] -= dot * prev[t];
      }
    }
    double norm_sq = 0.0;
    for (std::size_t t = 0; t < n_; ++t) {
      norm_sq += row[t] * row[t];
    }
    SOFA_CHECK(norm_sq > 0.0) << "degenerate Chebyshev basis row " << j;
    const double inv_norm = 1.0 / std::sqrt(norm_sq);
    for (std::size_t t = 0; t < n_; ++t) {
      row[t] *= inv_norm;
    }
  }

  basis_.resize(l_ * n_);
  for (std::size_t i = 0; i < l_ * n_; ++i) {
    basis_[i] = static_cast<float>(rows[i]);
  }
}

void ChebySummary::Project(const float* series, float* values_out) const {
  for (std::size_t j = 0; j < l_; ++j) {
    const float* row = basis_.data() + j * n_;
    double dot = 0.0;
    for (std::size_t t = 0; t < n_; ++t) {
      dot += static_cast<double>(row[t]) * series[t];
    }
    values_out[j] = static_cast<float>(dot);
  }
}

void ChebySummary::Reconstruct(const float* values, float* series_out) const {
  for (std::size_t t = 0; t < n_; ++t) {
    series_out[t] = 0.0f;
  }
  for (std::size_t j = 0; j < l_; ++j) {
    const float* row = basis_.data() + j * n_;
    for (std::size_t t = 0; t < n_; ++t) {
      series_out[t] += values[j] * row[t];
    }
  }
}

std::unique_ptr<NumericSummary::QueryState> ChebySummary::NewQueryState()
    const {
  auto state = std::make_unique<ChebyQueryState>();
  state->values.resize(l_);
  return state;
}

void ChebySummary::PrepareQuery(const float* query, QueryState* state) const {
  auto* cheby_state = static_cast<ChebyQueryState*>(state);
  Project(query, cheby_state->values.data());
}

float ChebySummary::LowerBoundSquared(const QueryState& state,
                                      const float* candidate_values) const {
  const auto& cheby_state = static_cast<const ChebyQueryState&>(state);
  double sum = 0.0;
  for (std::size_t j = 0; j < l_; ++j) {
    const double diff =
        static_cast<double>(cheby_state.values[j]) - candidate_values[j];
    sum += diff * diff;
  }
  return static_cast<float>(sum);
}

}  // namespace numeric
}  // namespace sofa
