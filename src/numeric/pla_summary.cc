#include "numeric/pla_summary.h"

#include <vector>

#include "sax/paa.h"
#include "util/check.h"

namespace sofa {
namespace numeric {

namespace {

class PlaQueryState : public NumericSummary::QueryState {
 public:
  std::vector<float> values;
};

}  // namespace

PlaSummary::PlaSummary(std::size_t n, std::size_t num_values)
    : n_(n), segments_(num_values / 2) {
  SOFA_CHECK(num_values >= 2 && num_values % 2 == 0)
      << "PLA stores (intercept, slope) pairs; num_values=" << num_values;
  SOFA_CHECK(segments_ <= n)
      << "more segments (" << segments_ << ") than points (" << n << ")";
  moment0_.resize(segments_);
  moment1_.resize(segments_);
  moment2_.resize(segments_);
  for (std::size_t i = 0; i < segments_; ++i) {
    const auto m = static_cast<double>(sax::SegmentLength(n_, segments_, i));
    moment0_[i] = m;
    moment1_[i] = m * (m - 1.0) / 2.0;
    moment2_[i] = (m - 1.0) * m * (2.0 * m - 1.0) / 6.0;
  }
}

void PlaSummary::Project(const float* series, float* values_out) const {
  for (std::size_t i = 0; i < segments_; ++i) {
    const std::size_t begin = sax::SegmentStart(n_, segments_, i);
    const std::size_t end = sax::SegmentStart(n_, segments_, i + 1);
    double sum_x = 0.0;
    double sum_tx = 0.0;
    for (std::size_t t = begin; t < end; ++t) {
      sum_x += series[t];
      sum_tx += static_cast<double>(t - begin) * series[t];
    }
    const double m = moment0_[i];
    // Normal equations for x ≈ a + b·t over t = 0 … m−1; a singular system
    // (m = 1) degenerates to the constant fit.
    const double denom = moment2_[i] - moment1_[i] * moment1_[i] / m;
    const double slope =
        denom > 0.0 ? (sum_tx - moment1_[i] * sum_x / m) / denom : 0.0;
    const double intercept = (sum_x - slope * moment1_[i]) / m;
    values_out[2 * i] = static_cast<float>(intercept);
    values_out[2 * i + 1] = static_cast<float>(slope);
  }
}

void PlaSummary::Reconstruct(const float* values, float* series_out) const {
  for (std::size_t i = 0; i < segments_; ++i) {
    const std::size_t begin = sax::SegmentStart(n_, segments_, i);
    const std::size_t end = sax::SegmentStart(n_, segments_, i + 1);
    for (std::size_t t = begin; t < end; ++t) {
      series_out[t] = values[2 * i] +
                      values[2 * i + 1] * static_cast<float>(t - begin);
    }
  }
}

std::unique_ptr<NumericSummary::QueryState> PlaSummary::NewQueryState()
    const {
  auto state = std::make_unique<PlaQueryState>();
  state->values.resize(num_values());
  return state;
}

void PlaSummary::PrepareQuery(const float* query, QueryState* state) const {
  auto* pla_state = static_cast<PlaQueryState*>(state);
  Project(query, pla_state->values.data());
}

float PlaSummary::LowerBoundSquared(const QueryState& state,
                                    const float* candidate_values) const {
  const auto& pla_state = static_cast<const PlaQueryState&>(state);
  double sum = 0.0;
  for (std::size_t i = 0; i < segments_; ++i) {
    const double da = static_cast<double>(pla_state.values[2 * i]) -
                      candidate_values[2 * i];
    const double db = static_cast<double>(pla_state.values[2 * i + 1]) -
                      candidate_values[2 * i + 1];
    sum += moment0_[i] * da * da + 2.0 * moment1_[i] * da * db +
           moment2_[i] * db * db;
  }
  return static_cast<float>(sum);
}

}  // namespace numeric
}  // namespace sofa
