#include "numeric/numeric_summary.h"

#include <vector>

namespace sofa {
namespace numeric {

float NumericSummary::LowerBoundSquaredRaw(const float* query,
                                           const float* candidate) const {
  std::vector<float> values(num_values());
  Project(candidate, values.data());
  auto state = NewQueryState();
  PrepareQuery(query, state.get());
  return LowerBoundSquared(*state, values.data());
}

double NumericSummary::ReconstructionError(const float* series) const {
  const std::size_t n = series_length();
  std::vector<float> values(num_values());
  std::vector<float> approx(n);
  Project(series, values.data());
  Reconstruct(values.data(), approx.data());
  double sum = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double diff = static_cast<double>(series[t]) - approx[t];
    sum += diff * diff;
  }
  return sum / static_cast<double>(n);
}

}  // namespace numeric
}  // namespace sofa
