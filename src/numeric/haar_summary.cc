#include "numeric/haar_summary.h"

#include <cmath>
#include <vector>

#include "util/check.h"

namespace sofa {
namespace numeric {

namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

class HaarQueryState : public NumericSummary::QueryState {
 public:
  std::vector<float> values;
};

std::size_t LargestPowerOfTwoAtMost(std::size_t n) {
  std::size_t m = 1;
  while (m * 2 <= n) {
    m *= 2;
  }
  return m;
}

// In-place orthonormal Haar pyramid of w[0..len): after the call,
// w[0] is the scaling coefficient and details follow coarse-to-fine.
void ForwardHaar(double* w, std::size_t len) {
  std::vector<double> tmp(len);
  for (std::size_t half = len / 2; half >= 1; half /= 2) {
    for (std::size_t i = 0; i < half; ++i) {
      tmp[i] = (w[2 * i] + w[2 * i + 1]) * kInvSqrt2;
      tmp[half + i] = (w[2 * i] - w[2 * i + 1]) * kInvSqrt2;
    }
    for (std::size_t i = 0; i < 2 * half; ++i) {
      w[i] = tmp[i];
    }
    if (half == 1) {
      break;
    }
  }
}

void InverseHaar(double* w, std::size_t len) {
  std::vector<double> tmp(len);
  for (std::size_t half = 1; half < len; half *= 2) {
    for (std::size_t i = 0; i < half; ++i) {
      tmp[2 * i] = (w[i] + w[half + i]) * kInvSqrt2;
      tmp[2 * i + 1] = (w[i] - w[half + i]) * kInvSqrt2;
    }
    for (std::size_t i = 0; i < 2 * half; ++i) {
      w[i] = tmp[i];
    }
  }
}

}  // namespace

HaarSummary::HaarSummary(std::size_t n, std::size_t num_values)
    : n_(n), m_(LargestPowerOfTwoAtMost(n)), l_(num_values) {
  SOFA_CHECK(n > 0);
  SOFA_CHECK(num_values > 0 && num_values <= m_)
      << "Haar keeps at most transform_length()=" << m_
      << " coefficients, got l=" << num_values;
}

void HaarSummary::Project(const float* series, float* values_out) const {
  std::vector<double> w(m_);
  for (std::size_t t = 0; t < m_; ++t) {
    w[t] = series[t];
  }
  ForwardHaar(w.data(), m_);
  for (std::size_t j = 0; j < l_; ++j) {
    values_out[j] = static_cast<float>(w[j]);
  }
}

void HaarSummary::Reconstruct(const float* values, float* series_out) const {
  std::vector<double> w(m_, 0.0);
  for (std::size_t j = 0; j < l_; ++j) {
    w[j] = values[j];
  }
  InverseHaar(w.data(), m_);
  for (std::size_t t = 0; t < m_; ++t) {
    series_out[t] = static_cast<float>(w[t]);
  }
  // The tail beyond the dyadic prefix carries no coefficients; the
  // least-squares completion from the stored set is zero.
  for (std::size_t t = m_; t < n_; ++t) {
    series_out[t] = 0.0f;
  }
}

std::unique_ptr<NumericSummary::QueryState> HaarSummary::NewQueryState()
    const {
  auto state = std::make_unique<HaarQueryState>();
  state->values.resize(l_);
  return state;
}

void HaarSummary::PrepareQuery(const float* query, QueryState* state) const {
  auto* haar_state = static_cast<HaarQueryState*>(state);
  Project(query, haar_state->values.data());
}

float HaarSummary::LowerBoundSquared(const QueryState& state,
                                     const float* candidate_values) const {
  const auto& haar_state = static_cast<const HaarQueryState&>(state);
  double sum = 0.0;
  for (std::size_t j = 0; j < l_; ++j) {
    const double diff =
        static_cast<double>(haar_state.values[j]) - candidate_values[j];
    sum += diff * diff;
  }
  return static_cast<float>(sum);
}

}  // namespace numeric
}  // namespace sofa
