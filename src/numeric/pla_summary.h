// PLA — Piecewise Linear Approximation (Chen et al. [30]) as a real-valued
// GEMINI summarization.
//
// Projection: l/2 equal-length segments (integer partitions), each fit by
// its least-squares line and stored as an (intercept, slope) pair in the
// segment-local time frame t = 0 … m−1. Lower bound: the least-squares
// line is the orthogonal projection onto span{1, t} per segment, so the
// distance between the fitted lines — in closed form over the grid,
//
//   Σ_seg [ m·Δa² + 2·Δa·Δb·Σt + Δb²·Σt² ],   Δa/Δb = parameter deltas,
//
// never exceeds the Euclidean distance of the originals (Pythagoras per
// segment, summed). This mirrors the "indexable PLA" bound of [30] with an
// orthonormal-projection argument instead of their rotated basis.

#ifndef SOFA_NUMERIC_PLA_SUMMARY_H_
#define SOFA_NUMERIC_PLA_SUMMARY_H_

#include <cstddef>
#include <memory>
#include <string>

#include "numeric/numeric_summary.h"
#include "util/aligned.h"

namespace sofa {
namespace numeric {

/// PLA summarization: l/2 least-squares line segments.
class PlaSummary : public NumericSummary {
 public:
  /// Plans PLA over length-n series storing num_values floats =
  /// num_values/2 line segments (num_values even, num_values/2 ≤ n).
  PlaSummary(std::size_t n, std::size_t num_values);

  std::string name() const override { return "PLA"; }
  std::size_t series_length() const override { return n_; }
  std::size_t num_values() const override { return 2 * segments_; }

  /// values_out = [a_0, b_0, a_1, b_1, …] (intercept, slope per segment).
  void Project(const float* series, float* values_out) const override;
  void Reconstruct(const float* values, float* series_out) const override;

  std::unique_ptr<QueryState> NewQueryState() const override;
  void PrepareQuery(const float* query, QueryState* state) const override;
  float LowerBoundSquared(const QueryState& state,
                          const float* candidate_values) const override;

 private:
  std::size_t n_;
  std::size_t segments_;
  // Per-segment grid moments for the fit and the bound: m, Σt, Σt².
  AlignedVector<double> moment0_;
  AlignedVector<double> moment1_;
  AlignedVector<double> moment2_;
};

}  // namespace numeric
}  // namespace sofa

#endif  // SOFA_NUMERIC_PLA_SUMMARY_H_
