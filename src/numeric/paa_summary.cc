#include "numeric/paa_summary.h"

#include <vector>

#include "sax/paa.h"
#include "util/check.h"

namespace sofa {
namespace numeric {

namespace {

class PaaQueryState : public NumericSummary::QueryState {
 public:
  std::vector<float> values;
};

}  // namespace

PaaSummary::PaaSummary(std::size_t n, std::size_t num_segments)
    : n_(n), segments_(num_segments) {
  SOFA_CHECK(num_segments > 0 && num_segments <= n)
      << "PAA needs 0 < segments <= n, got l=" << num_segments
      << " n=" << n;
  weights_.resize(segments_);
  for (std::size_t i = 0; i < segments_; ++i) {
    weights_[i] =
        static_cast<float>(sax::SegmentLength(n_, segments_, i));
  }
}

void PaaSummary::Project(const float* series, float* values_out) const {
  sax::Paa(series, n_, segments_, values_out);
}

void PaaSummary::Reconstruct(const float* values, float* series_out) const {
  for (std::size_t i = 0; i < segments_; ++i) {
    const std::size_t begin = sax::SegmentStart(n_, segments_, i);
    const std::size_t end = sax::SegmentStart(n_, segments_, i + 1);
    for (std::size_t t = begin; t < end; ++t) {
      series_out[t] = values[i];
    }
  }
}

std::unique_ptr<NumericSummary::QueryState> PaaSummary::NewQueryState()
    const {
  auto state = std::make_unique<PaaQueryState>();
  state->values.resize(segments_);
  return state;
}

void PaaSummary::PrepareQuery(const float* query, QueryState* state) const {
  auto* paa_state = static_cast<PaaQueryState*>(state);
  Project(query, paa_state->values.data());
}

float PaaSummary::LowerBoundSquared(const QueryState& state,
                                    const float* candidate_values) const {
  const auto& paa_state = static_cast<const PaaQueryState&>(state);
  double sum = 0.0;
  for (std::size_t i = 0; i < segments_; ++i) {
    const double diff =
        static_cast<double>(paa_state.values[i]) - candidate_values[i];
    sum += weights_[i] * diff * diff;
  }
  return static_cast<float>(sum);
}

}  // namespace numeric
}  // namespace sofa
