// PAA as a real-valued GEMINI summarization (Keogh et al. [19]).
//
// Projection: the l segment means (segments are the integer partitions of
// sax/paa.h). Lower bound: per-segment mean difference weighted by the
// segment length,
//
//   LBD²(Q, C) = Σ_i len_i · (q̄_i − c̄_i)²,
//
// the classic PAA bound — segment means are the orthogonal projection onto
// the subspace of series piecewise-constant on the segmentation, so the
// distance of projections never exceeds the distance of the originals.
// This is the un-quantized core of iSAX: its TLB is the ceiling the iSAX
// symbolization approaches as the alphabet grows (Tables V/VI).

#ifndef SOFA_NUMERIC_PAA_SUMMARY_H_
#define SOFA_NUMERIC_PAA_SUMMARY_H_

#include <cstddef>
#include <memory>
#include <string>

#include "numeric/numeric_summary.h"
#include "util/aligned.h"

namespace sofa {
namespace numeric {

/// PAA summarization: l segment means with the length-weighted bound.
class PaaSummary : public NumericSummary {
 public:
  /// Plans PAA over length-n series with `num_segments` segments
  /// (0 < num_segments ≤ n).
  PaaSummary(std::size_t n, std::size_t num_segments);

  std::string name() const override { return "PAA"; }
  std::size_t series_length() const override { return n_; }
  std::size_t num_values() const override { return segments_; }

  void Project(const float* series, float* values_out) const override;
  void Reconstruct(const float* values, float* series_out) const override;

  std::unique_ptr<QueryState> NewQueryState() const override;
  void PrepareQuery(const float* query, QueryState* state) const override;
  float LowerBoundSquared(const QueryState& state,
                          const float* candidate_values) const override;

 private:
  std::size_t n_;
  std::size_t segments_;
  AlignedVector<float> weights_;  // per-segment lengths
};

}  // namespace numeric
}  // namespace sofa

#endif  // SOFA_NUMERIC_PAA_SUMMARY_H_
