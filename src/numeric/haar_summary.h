// DHWT — Discrete Haar Wavelet Transform (Popivanov & Miller [32]) as a
// real-valued GEMINI summarization.
//
// Projection: the orthonormal Haar pyramid (pairs (a,b) ↦ ((a+b)/√2,
// (a−b)/√2), recursing on the approximation half) over the longest
// power-of-two prefix m ≤ n, keeping the first l coefficients in
// coarse-to-fine order (scaling coefficient, then detail levels). The
// transform is orthonormal, so Bessel gives
//
//   LBD²(Q, C) = Σ_{j<l} (q_j − c_j)² ≤ ED² over the prefix ≤ ED²(Q, C).
//
// Power-of-two restriction: Haar is only orthonormal on dyadic lengths;
// classic DHWT indexing zero-pads, which distorts distances. Truncating to
// the m-prefix keeps the bound exact — the discarded tail only loosens it.
// The paper's series lengths (96–256) make m/n ≥ 0.75 in the worst case
// and m = n for the 128/256-length majority.

#ifndef SOFA_NUMERIC_HAAR_SUMMARY_H_
#define SOFA_NUMERIC_HAAR_SUMMARY_H_

#include <cstddef>
#include <memory>
#include <string>

#include "numeric/numeric_summary.h"

namespace sofa {
namespace numeric {

/// Haar-wavelet summarization: first l orthonormal pyramid coefficients.
class HaarSummary : public NumericSummary {
 public:
  /// Plans Haar over length-n series keeping num_values coefficients
  /// (0 < num_values ≤ largest power of two ≤ n).
  HaarSummary(std::size_t n, std::size_t num_values);

  std::string name() const override { return "DHWT"; }
  std::size_t series_length() const override { return n_; }
  std::size_t num_values() const override { return l_; }

  /// Transform length: the largest power of two ≤ series_length().
  std::size_t transform_length() const { return m_; }

  void Project(const float* series, float* values_out) const override;
  void Reconstruct(const float* values, float* series_out) const override;

  std::unique_ptr<QueryState> NewQueryState() const override;
  void PrepareQuery(const float* query, QueryState* state) const override;
  float LowerBoundSquared(const QueryState& state,
                          const float* candidate_values) const override;

 private:
  std::size_t n_;
  std::size_t m_;
  std::size_t l_;
};

}  // namespace numeric
}  // namespace sofa

#endif  // SOFA_NUMERIC_HAAR_SUMMARY_H_
