// Real-valued (non-symbolic) summarizations with Euclidean lower bounds.
//
// Section III of the paper surveys the numeric dimensionality-reduction
// family that predates symbolic methods — PAA, APCA, PLA, Chebyshev
// polynomials, DFT and wavelets — and cites the pruning-power comparison of
// Schäfer & Högqvist [14]: none of them outperformed DFT, and SFA (the
// quantized DFT) matched or exceeded all but DFT. This module implements
// that comparison set so the claim is reproducible (see
// bench/relwork_numeric_tlb.cpp).
//
// Every method is a GEMINI summarization (Definitions 3/4): it maps a
// length-n series to num_values() floats and provides a distance on the
// reduced representation that provably lower-bounds the Euclidean distance
// of the originals. Unlike quant::SummaryScheme there is no quantization
// step — candidates store raw floats, which is exactly why these methods
// lost to symbolic ones on memory footprint (Section III) while setting the
// tightness ceiling that SFA approaches from below.
//
// The GEMINI query protocol is asymmetric: the query is available in full,
// candidates only as summaries. The interface mirrors that: PrepareQuery
// digests the raw query once (e.g. its DFT, or its prefix sums for APCA's
// per-candidate re-projection), then LowerBoundSquared is evaluated against
// many candidate summaries.

#ifndef SOFA_NUMERIC_NUMERIC_SUMMARY_H_
#define SOFA_NUMERIC_NUMERIC_SUMMARY_H_

#include <cstddef>
#include <memory>
#include <string>

namespace sofa {
namespace numeric {

/// Interface of a real-valued summarization with a Euclidean LBD.
class NumericSummary {
 public:
  /// Per-query digest of the raw query series; subclasses extend it. One
  /// instance per worker thread, reused across queries via PrepareQuery.
  class QueryState {
   public:
    virtual ~QueryState() = default;
  };

  virtual ~NumericSummary() = default;

  /// Method name for reports ("PAA", "APCA", "PLA", "CHEBY", "DFT",
  /// "DHWT").
  virtual std::string name() const = 0;

  /// Length n of the series this summary was planned for.
  virtual std::size_t series_length() const = 0;

  /// Number of floats stored per summarized series (the reduction target
  /// l; pair-based methods like APCA/PLA spend them as l/2 pairs).
  virtual std::size_t num_values() const = 0;

  /// Projects a z-normalized series of series_length() floats into
  /// num_values() summary floats.
  virtual void Project(const float* series, float* values_out) const = 0;

  /// Reconstructs a length-n approximation from a summary (for the
  /// Fig. 1/2-style representation-quality reports).
  virtual void Reconstruct(const float* values, float* series_out) const = 0;

  /// Creates a query digest compatible with this summary.
  virtual std::unique_ptr<QueryState> NewQueryState() const = 0;

  /// Digests a raw query series (length series_length()) into `state`.
  virtual void PrepareQuery(const float* query, QueryState* state) const = 0;

  /// Squared lower bound between the digested query and one candidate
  /// summary: LowerBoundSquared(q, E(c)) ≤ ED²(q, c) for every series c.
  virtual float LowerBoundSquared(const QueryState& state,
                                  const float* candidate_values) const = 0;

  /// Convenience: one-shot LBD² between a raw query and a raw candidate
  /// (projects the candidate internally; allocates — test/report use).
  float LowerBoundSquaredRaw(const float* query, const float* candidate) const;

  /// Convenience: mean squared reconstruction error of one series
  /// (project + reconstruct; allocates — report use).
  double ReconstructionError(const float* series) const;
};

}  // namespace numeric
}  // namespace sofa

#endif  // SOFA_NUMERIC_NUMERIC_SUMMARY_H_
