// TLB and pruning power for real-valued summarizations.
//
// The numeric twin of sfa/tlb.h: the same sampled (query, candidate)
// protocol and the same seed defaults, so a numeric method and a symbolic
// scheme evaluated on the same dataset see the same pairs and their TLBs
// are directly comparable — which is what the Section III related-work
// comparison (bench/relwork_numeric_tlb.cpp) needs.

#ifndef SOFA_NUMERIC_NUMERIC_TLB_H_
#define SOFA_NUMERIC_NUMERIC_TLB_H_

#include "core/dataset.h"
#include "numeric/numeric_summary.h"
#include "sfa/tlb.h"

namespace sofa {
namespace numeric {

/// Sampling options (shared with the symbolic harness so pairs match).
using TlbOptions = sfa::TlbOptions;

/// Mean TLB = mean of LBD/ED over sampled pairs with nonzero true
/// distance. Both datasets must be z-normalized series of the summary's
/// planned length.
double MeanTlb(const NumericSummary& summary, const Dataset& data,
               const Dataset& queries, const TlbOptions& options = {});

/// Mean fraction of sampled candidates whose LBD already exceeds the
/// query's exact 1-NN distance (pruning power, Section V-E).
double MeanPruningPower(const NumericSummary& summary, const Dataset& data,
                        const Dataset& queries,
                        const TlbOptions& options = {});

}  // namespace numeric
}  // namespace sofa

#endif  // SOFA_NUMERIC_NUMERIC_TLB_H_
