#include "persist/generation_store.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include "index/serialization.h"
#include "quant/rowq.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/fsutil.h"

namespace sofa {
namespace persist {
namespace {

constexpr char kManifestMagic[8] = {'S', 'O', 'F', 'A', 'M', 'A', 'N', '1'};
constexpr char kSliceMagic[8] = {'S', 'O', 'F', 'A', 'S', 'L', 'C', '1'};
constexpr char kRowqMagic[8] = {'S', 'O', 'F', 'A', 'R', 'Q', '0', '1'};
// v1: no per-shard .rq accounting. v2: two trailing fields per shard
// (rq_bytes, rq_crc). Writers emit v2; readers accept both so a store
// written by a pre-rowq build keeps loading (its shards simply have no
// sidecar and rebuild one on demand when the tier is requested).
constexpr std::uint32_t kManifestVersionLegacy = 1;
constexpr std::uint32_t kManifestVersion = 2;
constexpr char kGenPrefix[] = "gen-";
constexpr char kTmpSuffix[] = ".tmp";
constexpr char kManifestName[] = "MANIFEST";
// A corrupted manifest length field must not drive allocations.
constexpr std::size_t kMaxManifestBytes = 1ull << 30;
constexpr std::size_t kMaxShards = 1u << 16;

std::string GenName(std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%010llu", kGenPrefix,
                static_cast<unsigned long long>(seq));
  return name;
}

std::string ShardFile(const std::string& dir, std::size_t s,
                      const char* suffix) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04zu.%s", s, suffix);
  return dir + "/" + name;
}

// Parses "gen-NNNNNNNNNN" (committed) or "gen-NNNNNNNNNN.<anything>"
// (staging/replacement husks — ".tmp", ".old.tmp"); foreign names
// return false.
bool ParseGenName(const std::string& name, std::uint64_t* seq, bool* tmp) {
  const std::size_t prefix = sizeof(kGenPrefix) - 1;
  if (name.size() <= prefix || name.compare(0, prefix, kGenPrefix) != 0) {
    return false;
  }
  std::size_t i = prefix;
  std::uint64_t value = 0;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(name[i] - '0');
    ++i;
  }
  if (i == prefix) {
    return false;  // no digits
  }
  *tmp = i < name.size();  // any dotted suffix marks a non-committed husk
  if (*tmp && name[i] != '.') {
    return false;
  }
  *seq = value;
  return true;
}

// rm -rf for one generation directory (flat: no nested directories).
// Returns the bytes reclaimed (regular-file sizes; hardlinked files
// count at every unlink — the accounting is per directory, not per
// inode).
std::uint64_t RemoveDirRecursive(const std::string& dir) {
  std::uint64_t reclaimed = 0;
  DIR* handle = ::opendir(dir.c_str());
  if (handle != nullptr) {
    while (const dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") {
        continue;
      }
      const std::string path = dir + "/" + name;
      struct stat st;
      if (::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
        reclaimed += static_cast<std::uint64_t>(st.st_size);
      }
      ::unlink(path.c_str());
    }
    ::closedir(handle);
  }
  ::rmdir(dir.c_str());
  return reclaimed;
}

// FsyncPath with call accounting (persist observability: how many fsync
// barriers one commit costs).
bool CountedFsync(const std::string& path, bool directory,
                  std::uint64_t* fsyncs) {
  ++*fsyncs;
  return FsyncPath(path, directory);
}

// Atomically swaps two paths (renameat2 + RENAME_EXCHANGE); false when
// the kernel or filesystem does not support the exchange.
bool ExchangePaths(const std::string& a, const std::string& b) {
#if defined(SYS_renameat2)
#ifndef RENAME_EXCHANGE
#define RENAME_EXCHANGE (1 << 1)
#endif
  return ::syscall(SYS_renameat2, AT_FDCWD, a.c_str(), AT_FDCWD, b.c_str(),
                   RENAME_EXCHANGE) == 0;
#else
  (void)a;
  (void)b;
  return false;
#endif
}

void PutU32(std::vector<unsigned char>* out, std::uint32_t v) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutU64(std::vector<unsigned char>* out, std::uint64_t v) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

// Sequential decoder over a byte buffer; `ok` goes false on overrun and
// stays false (every Get after that returns zero).
class Decoder {
 public:
  Decoder(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - at_; }

  bool Bytes(void* out, std::size_t n) {
    if (!ok_ || size_ - at_ < n) {
      ok_ = false;
      return false;
    }
    if (n > 0) {  // empty reads may pass a null destination
      std::memcpy(out, data_ + at_, n);
      at_ += n;
    }
    return true;
  }

  std::uint64_t U64() {
    std::uint64_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  std::uint32_t U32() {
    std::uint32_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  std::uint8_t U8() {
    std::uint8_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

// Streams bytes to a file while accumulating size + CRC32 — the shard
// files are whole-file checksummed in the manifest.
class CrcFileWriter {
 public:
  explicit CrcFileWriter(const std::string& path,
                         std::uint64_t* fsyncs = nullptr)
      : file_(std::fopen(path.c_str(), "wb")), fsyncs_(fsyncs) {}
  ~CrcFileWriter() {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }

  bool ok() const { return file_ != nullptr && ok_; }
  std::uint64_t bytes() const { return bytes_; }
  std::uint32_t crc() const { return crc_; }

  void Write(const void* data, std::size_t size) {
    if (!ok() || size == 0) {  // empty slices pass a null data pointer
      return;
    }
    if (std::fwrite(data, 1, size, file_) != size) {
      ok_ = false;
      return;
    }
    crc_ = Crc32(data, size, crc_);
    bytes_ += size;
  }

  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write(&value, sizeof(T));
  }

  // Flush + fsync + close; true when every byte is on stable storage.
  bool Commit() {
    if (!ok()) {
      return false;
    }
    bool committed = std::fflush(file_) == 0;
    if (committed) {
      if (fsyncs_ != nullptr) {
        ++*fsyncs_;
      }
      committed = ::fsync(::fileno(file_)) == 0;
    }
    committed = (std::fclose(file_) == 0) && committed;
    file_ = nullptr;
    return committed;
  }

 private:
  std::FILE* file_;
  std::uint64_t* fsyncs_;
  bool ok_ = true;
  std::uint64_t bytes_ = 0;
  std::uint32_t crc_ = 0;
};

// Whole-file read with size + CRC accounting. `out == nullptr` streams
// the file without retaining content — how multi-GB shard index files
// are checksummed on both the write and the read side without a
// file-sized allocation (SaveIndex/LoadIndex do their own passes over
// them).
bool ReadFileBytes(const std::string& path, std::vector<unsigned char>* out,
                   std::uint64_t* bytes, std::uint32_t* crc) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return false;
  }
  if (out != nullptr) {
    out->clear();
  }
  unsigned char chunk[1 << 16];
  std::uint64_t total = 0;
  std::uint32_t sum = 0;
  while (true) {
    const std::size_t n = std::fread(chunk, 1, sizeof(chunk), file);
    if (n == 0) {
      break;
    }
    if (out != nullptr) {
      out->insert(out->end(), chunk, chunk + n);
    }
    sum = Crc32(chunk, n, sum);
    total += n;
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) {
    return false;
  }
  *bytes = total;
  *crc = sum;
  return true;
}

// Writes one slice file (rows + global ids) and reports its size + CRC.
bool WriteSliceFile(const std::string& path, const Dataset& rows,
                    const std::uint32_t* ids, std::uint64_t* bytes,
                    std::uint32_t* crc, std::uint64_t* fsyncs = nullptr) {
  CrcFileWriter w(path, fsyncs);
  w.Write(kSliceMagic, sizeof(kSliceMagic));
  w.Pod(static_cast<std::uint64_t>(rows.size()));
  w.Pod(static_cast<std::uint64_t>(rows.length()));
  w.Write(rows.data(), rows.size() * rows.length() * sizeof(float));
  w.Write(ids, rows.size() * sizeof(std::uint32_t));
  *bytes = w.bytes();
  *crc = w.crc();
  return w.Commit();
}

// Parses a slice file already validated against its manifest size + CRC.
bool ParseSliceFile(const std::vector<unsigned char>& bytes,
                    std::size_t expected_length,
                    std::shared_ptr<Dataset>* rows,
                    std::vector<std::uint32_t>* ids) {
  Decoder d(bytes.data(), bytes.size());
  char magic[8];
  if (!d.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kSliceMagic, sizeof(kSliceMagic)) != 0) {
    return false;
  }
  const std::uint64_t count = d.U64();
  const std::uint64_t length = d.U64();
  const std::uint64_t per_row = length * sizeof(float) + sizeof(std::uint32_t);
  if (!d.ok() || length != expected_length ||
      count > d.remaining() / per_row || d.remaining() != count * per_row) {
    return false;
  }
  auto data = std::make_shared<Dataset>(static_cast<std::size_t>(count),
                                        static_cast<std::size_t>(length));
  d.Bytes(data->mutable_data(), count * length * sizeof(float));
  ids->resize(count);
  d.Bytes(ids->data(), count * sizeof(std::uint32_t));
  if (!d.ok()) {
    return false;
  }
  *rows = std::move(data);
  return true;
}

// Writes one shard's quantized sidecar (the compressed pruning tier's
// grid + codes + prunability flags) and reports its size + CRC. Layout:
// magic; u64 rows, length, padded; float mins[padded], deltas[padded];
// u8 prunable[rows]; u8 codes[rows * padded].
bool WriteRowqFile(const std::string& path, const quant::RowQuant& rowq,
                   std::uint64_t* bytes, std::uint32_t* crc,
                   std::uint64_t* fsyncs = nullptr) {
  const quant::RowQuantizer& q = rowq.quantizer();
  CrcFileWriter w(path, fsyncs);
  w.Write(kRowqMagic, sizeof(kRowqMagic));
  w.Pod(static_cast<std::uint64_t>(rowq.rows()));
  w.Pod(static_cast<std::uint64_t>(q.length()));
  w.Pod(static_cast<std::uint64_t>(q.padded_length()));
  w.Write(q.mins(), q.padded_length() * sizeof(float));
  w.Write(q.deltas(), q.padded_length() * sizeof(float));
  w.Write(rowq.prunable_flags().data(), rowq.rows());
  w.Write(rowq.codes().data(), rowq.rows() * q.padded_length());
  *bytes = w.bytes();
  *crc = w.crc();
  return w.Commit();
}

// Parses a sidecar already validated against its manifest size + CRC.
// The persisted grid is reassembled verbatim (FromParts), never
// retrained: the bounds a restarted process prunes on are bit-identical
// to the ones the writing process used.
bool ParseRowqFile(const std::vector<unsigned char>& bytes,
                   std::size_t expected_length, std::size_t expected_rows,
                   std::shared_ptr<const quant::RowQuant>* out) {
  Decoder d(bytes.data(), bytes.size());
  char magic[8];
  if (!d.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kRowqMagic, sizeof(kRowqMagic)) != 0) {
    return false;
  }
  const std::uint64_t rows = d.U64();
  const std::uint64_t length = d.U64();
  const std::uint64_t padded = d.U64();
  if (!d.ok() || rows != expected_rows || length != expected_length ||
      padded != RoundUp(length, quant::kRowqLanes) ||
      d.remaining() != (padded * 2) * sizeof(float) + rows + rows * padded) {
    return false;
  }
  AlignedVector<float> mins(static_cast<std::size_t>(padded));
  AlignedVector<float> deltas(static_cast<std::size_t>(padded));
  d.Bytes(mins.data(), padded * sizeof(float));
  d.Bytes(deltas.data(), padded * sizeof(float));
  std::vector<std::uint8_t> prunable(static_cast<std::size_t>(rows));
  AlignedVector<std::uint8_t> codes(static_cast<std::size_t>(rows * padded));
  d.Bytes(prunable.data(), rows);
  d.Bytes(codes.data(), rows * padded);
  if (!d.ok()) {
    return false;
  }
  *out = quant::RowQuant::FromParts(
      quant::RowQuantizer::FromParts(static_cast<std::size_t>(length),
                                     std::move(mins), std::move(deltas)),
      std::move(codes), std::move(prunable), static_cast<std::size_t>(rows));
  return true;
}

std::vector<unsigned char> EncodeManifest(
    const GenerationManifest& m,
    std::uint32_t version = kManifestVersion) {
  std::vector<unsigned char> payload;
  PutU64(&payload, m.generation_seq);
  PutU64(&payload, m.next_id);
  PutU64(&payload, m.route_total);
  PutU64(&payload, m.series_length);
  payload.push_back(static_cast<unsigned char>(
      m.assignment == shard::ShardAssignment::kHash ? 1 : 0));
  PutU64(&payload, m.wal_last_seqno);
  PutU64(&payload, m.wal_segment_seq);
  PutU64(&payload, m.shards.size());
  for (const ManifestShard& s : m.shards) {
    PutU64(&payload, s.shard_generation);
    PutU64(&payload, s.index_bytes);
    PutU32(&payload, s.index_crc);
    PutU64(&payload, s.slice_bytes);
    PutU32(&payload, s.slice_crc);
    PutU64(&payload, s.tail_bytes);
    PutU32(&payload, s.tail_crc);
    if (version >= 2) {
      PutU64(&payload, s.rq_bytes);
      PutU32(&payload, s.rq_crc);
    }
  }
  PutU64(&payload, m.tombstones.size());
  for (const std::uint32_t id : m.tombstones) {
    PutU32(&payload, id);
  }
  return payload;
}

bool DecodeManifest(const std::vector<unsigned char>& bytes,
                    GenerationManifest* out) {
  Decoder header(bytes.data(), bytes.size());
  char magic[8];
  if (!header.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return false;
  }
  const std::uint32_t version = header.U32();
  const std::uint32_t payload_size = header.U32();
  const std::uint32_t crc = header.U32();
  if (!header.ok() ||
      (version != kManifestVersion && version != kManifestVersionLegacy) ||
      payload_size != header.remaining() ||
      Crc32(bytes.data() + (bytes.size() - payload_size), payload_size) !=
          crc) {
    return false;
  }
  Decoder d(bytes.data() + (bytes.size() - payload_size), payload_size);
  out->generation_seq = d.U64();
  out->next_id = d.U64();
  out->route_total = d.U64();
  out->series_length = d.U64();
  out->assignment = d.U8() == 1 ? shard::ShardAssignment::kHash
                                : shard::ShardAssignment::kContiguous;
  out->wal_last_seqno = d.U64();
  out->wal_segment_seq = d.U64();
  const std::uint64_t num_shards = d.U64();
  if (!d.ok() || num_shards == 0 || num_shards > kMaxShards) {
    return false;
  }
  out->shards.resize(num_shards);
  for (ManifestShard& s : out->shards) {
    s.shard_generation = d.U64();
    s.index_bytes = d.U64();
    s.index_crc = d.U32();
    s.slice_bytes = d.U64();
    s.slice_crc = d.U32();
    s.tail_bytes = d.U64();
    s.tail_crc = d.U32();
    if (version >= 2) {
      s.rq_bytes = d.U64();
      s.rq_crc = d.U32();
    }  // v1: no sidecar accounting — rq_bytes stays 0 (rebuild on load)
  }
  const std::uint64_t num_tombstones = d.U64();
  if (!d.ok() ||
      d.remaining() != num_tombstones * sizeof(std::uint32_t)) {
    return false;
  }
  out->tombstones.resize(num_tombstones);
  d.Bytes(out->tombstones.data(), num_tombstones * sizeof(std::uint32_t));
  return d.ok() && out->series_length > 0;
}

// Validates a shard file against its manifest accounting; `out` may be
// null to validate without retaining the content (index files — their
// loader reads them itself).
bool ReadValidatedFile(const std::string& path, std::uint64_t want_bytes,
                       std::uint32_t want_crc,
                       std::vector<unsigned char>* out) {
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
  if (!ReadFileBytes(path, out, &bytes, &crc)) {
    return false;
  }
  return bytes == want_bytes && crc == want_crc;
}

// Hardlink `from` as `to`, falling back to a byte copy (cross-device
// stores, filesystems without hardlinks). Returns the linked/copied
// file's existence.
bool LinkOrCopy(const std::string& from, const std::string& to,
                std::uint64_t* fsyncs = nullptr) {
  if (::link(from.c_str(), to.c_str()) == 0) {
    return true;
  }
  std::FILE* in = std::fopen(from.c_str(), "rb");
  if (in == nullptr) {
    return false;
  }
  std::FILE* out = std::fopen(to.c_str(), "wb");
  if (out == nullptr) {
    std::fclose(in);
    return false;
  }
  unsigned char chunk[1 << 16];
  bool ok = true;
  while (ok) {
    const std::size_t n = std::fread(chunk, 1, sizeof(chunk), in);
    if (n == 0) {
      ok = std::ferror(in) == 0;
      break;
    }
    ok = std::fwrite(chunk, 1, n, out) == n;
  }
  if (ok && fsyncs != nullptr) {
    ++*fsyncs;
  }
  ok = ok && std::fflush(out) == 0 && ::fsync(::fileno(out)) == 0;
  std::fclose(in);
  ok = (std::fclose(out) == 0) && ok;
  return ok;
}

}  // namespace

GenerationStore::GenerationStore(std::string root, obs::Registry* registry)
    : root_(std::move(root)) {
  if (registry != nullptr) {
    obs::HistogramOptions commit_opts;
    commit_opts.min_value = 1e-2;   // 10 µs
    commit_opts.max_value = 1e6;    // 1000 s — big collections fsync slowly
    commit_ms_ = registry->GetHistogram(
        "sofa_persist_commit_ms", commit_opts, {},
        "Wall time of one generation Persist() (staging through commit)");
    fsync_total_ = registry->GetCounter(
        "sofa_persist_fsync_total", {},
        "fsync barriers issued by generation persists");
    gc_reclaimed_bytes_ = registry->GetCounter(
        "sofa_persist_gc_reclaimed_bytes_total", {},
        "Bytes reclaimed by generation garbage collection");
  }
}

std::unique_ptr<GenerationStore> GenerationStore::Open(
    const std::string& root, obs::Registry* registry) {
  if (!MakeDirs(root)) {
    return nullptr;
  }
  return std::unique_ptr<GenerationStore>(
      new GenerationStore(root, registry));
}

std::string GenerationStore::GenerationDir(std::uint64_t seq) const {
  return root_ + "/" + GenName(seq);
}

std::vector<std::uint64_t> GenerationStore::ListGenerations() const {
  std::vector<std::uint64_t> seqs;
  DIR* handle = ::opendir(root_.c_str());
  if (handle == nullptr) {
    return seqs;
  }
  while (const dirent* entry = ::readdir(handle)) {
    std::uint64_t seq = 0;
    bool tmp = false;
    if (ParseGenName(entry->d_name, &seq, &tmp) && !tmp) {
      seqs.push_back(seq);
    }
  }
  ::closedir(handle);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

bool GenerationStore::Persist(const PersistRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t fsyncs = 0;
  const bool ok = PersistImpl(request, &fsyncs);
  if (fsync_total_ != nullptr) {
    fsync_total_->Add(fsyncs);
  }
  if (commit_ms_ != nullptr) {
    // Failed attempts are recorded too — a persist that spends seconds
    // before failing is exactly what the histogram should surface.
    commit_ms_->Record(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  return ok;
}

bool GenerationStore::PersistImpl(const PersistRequest& request,
                                  std::uint64_t* fsyncs) {
  SOFA_CHECK(request.sharded != nullptr);
  const shard::ShardedIndex& sharded = *request.sharded;
  const std::size_t num_shards = sharded.num_shards();
  SOFA_CHECK(request.buffer_rows.size() == num_shards &&
             request.buffer_ids.size() == num_shards);

  const std::string final_dir = GenerationDir(request.generation_seq);
  const std::string tmp_dir = final_dir + kTmpSuffix;
  RemoveDirRecursive(tmp_dir);  // stale husk from a previous failure
  if (!MakeDirs(tmp_dir)) {
    return false;
  }

  GenerationManifest manifest;
  manifest.generation_seq = request.generation_seq;
  manifest.next_id = request.next_id;
  manifest.route_total = request.route_total;
  manifest.series_length = sharded.length();
  manifest.assignment = sharded.config().assignment;
  manifest.wal_last_seqno = request.wal_last_seqno;
  manifest.wal_segment_seq = request.wal_segment_seq;
  manifest.tombstones = request.tombstones;
  manifest.shards.resize(num_shards);

  const bool can_reuse = last_manifest_.has_value() &&
                         last_manifest_->shards.size() == num_shards;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const shard::Shard& shard = sharded.shard(s);
    ManifestShard& entry = manifest.shards[s];
    entry.shard_generation = shard.generation;
    const std::string idx = ShardFile(tmp_dir, s, "idx");
    const std::string rows = ShardFile(tmp_dir, s, "rows");
    const std::string rq = ShardFile(tmp_dir, s, "rq");
    const bool want_rq = shard.tree->rowq() != nullptr;
    // Compaction replaces one shard per publish; every other shard's
    // tree, slice and quantized sidecar are bit-identical to the
    // previous commit, so a hardlink (copy on filesystems without them)
    // makes the steady-state persist O(changed shard), not
    // O(collection). Reuse additionally requires the previous commit's
    // sidecar presence to match the tree's current tier state (a tier
    // toggle between persists falls back to a fresh write).
    const bool reused =
        can_reuse &&
        last_manifest_->shards[s].shard_generation == shard.generation &&
        (last_manifest_->shards[s].rq_bytes > 0) == want_rq &&
        LinkOrCopy(ShardFile(last_dir_, s, "idx"), idx, fsyncs) &&
        LinkOrCopy(ShardFile(last_dir_, s, "rows"), rows, fsyncs) &&
        (!want_rq || LinkOrCopy(ShardFile(last_dir_, s, "rq"), rq, fsyncs));
    if (reused) {
      entry.index_bytes = last_manifest_->shards[s].index_bytes;
      entry.index_crc = last_manifest_->shards[s].index_crc;
      entry.slice_bytes = last_manifest_->shards[s].slice_bytes;
      entry.slice_crc = last_manifest_->shards[s].slice_crc;
      entry.rq_bytes = last_manifest_->shards[s].rq_bytes;
      entry.rq_crc = last_manifest_->shards[s].rq_crc;
    } else {
      if (!index::SaveIndex(*shard.tree, idx)) {
        return false;
      }
      if (!ReadFileBytes(idx, /*out=*/nullptr, &entry.index_bytes,
                         &entry.index_crc) ||
          !CountedFsync(idx, /*directory=*/false, fsyncs)) {
        return false;
      }
      if (!WriteSliceFile(rows, *shard.data, shard.global_ids->data(),
                          &entry.slice_bytes, &entry.slice_crc, fsyncs)) {
        return false;
      }
      if (want_rq && !WriteRowqFile(rq, *shard.tree->rowq(), &entry.rq_bytes,
                                    &entry.rq_crc, fsyncs)) {
        return false;
      }
    }
    SOFA_CHECK(request.buffer_rows[s].size() == request.buffer_ids[s].size());
    if (!WriteSliceFile(ShardFile(tmp_dir, s, "tail"),
                        request.buffer_rows[s],
                        request.buffer_ids[s].data(), &entry.tail_bytes,
                        &entry.tail_crc, fsyncs)) {
      return false;
    }
  }

  // The manifest is written last: a directory without a valid one never
  // commits, whatever else it holds.
  {
    const std::vector<unsigned char> payload = EncodeManifest(manifest);
    CrcFileWriter w(tmp_dir + "/" + kManifestName, fsyncs);
    w.Write(kManifestMagic, sizeof(kManifestMagic));
    w.Pod(kManifestVersion);
    w.Pod(static_cast<std::uint32_t>(payload.size()));
    w.Pod(Crc32(payload.data(), payload.size()));
    w.Write(payload.data(), payload.size());
    if (!w.Commit()) {
      return false;
    }
  }

  // Commit: fsync the staged directory (its entries are durable), rename
  // into the final name — THE atomic commit point — then fsync the root
  // so the rename itself is durable. Re-persisting an already-committed
  // sequence number (an embedder snapshotting between publishes) swaps
  // the directories atomically where the kernel supports it, so there is
  // never an instant with no committed generation; the fallback shrinks
  // the window to two back-to-back renames (old aside — as an ignored
  // .tmp name — then commit).
  if (!CountedFsync(tmp_dir, /*directory=*/true, fsyncs)) {
    return false;
  }
  struct stat existing;
  if (::stat(final_dir.c_str(), &existing) == 0) {
    if (ExchangePaths(tmp_dir, final_dir)) {
      RemoveDirRecursive(tmp_dir);  // the swapped-out old generation
    } else {
      const std::string old_aside = final_dir + ".old" + kTmpSuffix;
      RemoveDirRecursive(old_aside);
      if (::rename(final_dir.c_str(), old_aside.c_str()) != 0 ||
          ::rename(tmp_dir.c_str(), final_dir.c_str()) != 0) {
        return false;
      }
      RemoveDirRecursive(old_aside);
    }
  } else if (::rename(tmp_dir.c_str(), final_dir.c_str()) != 0) {
    return false;
  }
  if (!CountedFsync(root_, /*directory=*/true, fsyncs)) {
    return false;
  }
  last_manifest_ = std::move(manifest);
  last_dir_ = final_dir;
  return true;
}

std::optional<LoadedGeneration> GenerationStore::LoadGeneration(
    std::uint64_t seq, ThreadPool* pool, bool enable_rowq) const {
  SOFA_CHECK(pool != nullptr);
  const std::string dir = GenerationDir(seq);
  LoadedGeneration loaded;
  {
    std::vector<unsigned char> bytes;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
    if (!ReadFileBytes(dir + "/" + kManifestName, &bytes, &size, &crc) ||
        size > kMaxManifestBytes ||
        !DecodeManifest(bytes, &loaded.manifest)) {
      return std::nullopt;
    }
  }
  const GenerationManifest& manifest = loaded.manifest;
  if (manifest.generation_seq != seq) {
    return std::nullopt;
  }
  const std::size_t num_shards = manifest.shards.size();
  std::vector<shard::Shard> shards(num_shards);
  shard::ShardingConfig config;
  config.num_shards = num_shards;
  config.assignment = manifest.assignment;
  loaded.buffer_rows.resize(num_shards);
  loaded.buffer_ids.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const ManifestShard& entry = manifest.shards[s];
    std::vector<unsigned char> bytes;
    if (!ReadValidatedFile(ShardFile(dir, s, "rows"), entry.slice_bytes,
                           entry.slice_crc, &bytes)) {
      return std::nullopt;
    }
    std::shared_ptr<Dataset> rows;
    std::vector<std::uint32_t> ids;
    if (!ParseSliceFile(bytes, manifest.series_length, &rows, &ids)) {
      return std::nullopt;
    }
    const std::string idx = ShardFile(dir, s, "idx");
    if (!ReadValidatedFile(idx, entry.index_bytes, entry.index_crc,
                           /*out=*/nullptr)) {
      return std::nullopt;
    }
    auto tree = index::LoadIndex(idx, rows.get(), pool);
    if (!tree.has_value()) {
      return std::nullopt;
    }
    if (enable_rowq) {
      // The compressed pruning tier: attach the persisted sidecar when
      // the manifest accounts for one, or rebuild it from the freshly
      // loaded slice (tier off at persist time, or a v1 generation
      // predating the .rq format). Either way the tier is admissible —
      // a rebuilt grid just yields different (still exact) prune rates.
      std::shared_ptr<const quant::RowQuant> rowq;
      if (entry.rq_bytes > 0) {
        std::vector<unsigned char> rq_bytes;
        if (!ReadValidatedFile(ShardFile(dir, s, "rq"), entry.rq_bytes,
                               entry.rq_crc, &rq_bytes) ||
            !ParseRowqFile(rq_bytes, manifest.series_length, rows->size(),
                           &rowq)) {
          return std::nullopt;
        }
      } else {
        rowq = quant::RowQuant::Build(*rows);
      }
      tree->tree->AttachRowQuant(std::move(rowq));
    }
    shards[s].data = rows;
    shards[s].scheme = std::shared_ptr<const quant::SummaryScheme>(
        std::move(tree->scheme));
    shards[s].tree = std::shared_ptr<const index::TreeIndex>(
        std::move(tree->tree));
    shards[s].global_ids =
        std::make_shared<const std::vector<std::uint32_t>>(std::move(ids));
    shards[s].generation = entry.shard_generation;
    if (!ReadValidatedFile(ShardFile(dir, s, "tail"), entry.tail_bytes,
                           entry.tail_crc, &bytes)) {
      return std::nullopt;
    }
    std::shared_ptr<Dataset> tail_rows;
    std::vector<std::uint32_t> tail_ids;
    if (!ParseSliceFile(bytes, manifest.series_length, &tail_rows,
                        &tail_ids)) {
      return std::nullopt;
    }
    loaded.buffer_rows[s] = std::move(tail_rows);
    loaded.buffer_ids[s] = std::move(tail_ids);
  }
  // Rebuilt shards keep the build-time per-tree configuration; recover
  // it from the deserialized trees so post-restart compactions derive
  // identically configured trees.
  config.index = shards[0].tree->config();
  config.enable_rowq = enable_rowq;
  loaded.sharded = shard::ShardedIndex::FromShards(
      std::move(shards), config, manifest.series_length, pool);
  return loaded;
}

std::optional<LoadedGeneration> GenerationStore::LoadLatest(
    ThreadPool* pool, bool enable_rowq) const {
  std::vector<std::uint64_t> seqs = ListGenerations();
  // Newest first; fall back across generations that fail any validation
  // step — a torn commit never has a valid manifest, and bit rot or a
  // racing GC shows up as a size/CRC/parse failure.
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    std::optional<LoadedGeneration> loaded =
        LoadGeneration(*it, pool, enable_rowq);
    if (loaded.has_value()) {
      return loaded;
    }
  }
  return std::nullopt;
}

bool GenerationStore::DowngradeManifestForTesting(const std::string& dir) {
  GenerationManifest manifest;
  {
    std::vector<unsigned char> bytes;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
    if (!ReadFileBytes(dir + "/" + kManifestName, &bytes, &size, &crc) ||
        size > kMaxManifestBytes || !DecodeManifest(bytes, &manifest)) {
      return false;
    }
  }
  // Re-encode as v1: the per-shard rq accounting is simply absent from
  // the payload, exactly as a pre-rowq build would have written it. Any
  // shard-<s>.rq files left in the directory become unreferenced bytes a
  // v1-era loader never looks at.
  const std::vector<unsigned char> payload =
      EncodeManifest(manifest, kManifestVersionLegacy);
  CrcFileWriter w(dir + "/" + kManifestName);
  w.Write(kManifestMagic, sizeof(kManifestMagic));
  w.Pod(kManifestVersionLegacy);
  w.Pod(static_cast<std::uint32_t>(payload.size()));
  w.Pod(Crc32(payload.data(), payload.size()));
  w.Write(payload.data(), payload.size());
  return w.Commit();
}

void GenerationStore::RemoveGenerationsBelow(std::uint64_t keep_seq) {
  DIR* handle = ::opendir(root_.c_str());
  if (handle == nullptr) {
    return;
  }
  std::vector<std::string> doomed;
  while (const dirent* entry = ::readdir(handle)) {
    std::uint64_t seq = 0;
    bool tmp = false;
    if (ParseGenName(entry->d_name, &seq, &tmp) && seq < keep_seq) {
      doomed.push_back(root_ + "/" + entry->d_name);
    }
  }
  ::closedir(handle);
  std::uint64_t reclaimed = 0;
  for (const std::string& dir : doomed) {
    reclaimed += RemoveDirRecursive(dir);
  }
  if (gc_reclaimed_bytes_ != nullptr && reclaimed > 0) {
    gc_reclaimed_bytes_->Add(reclaimed);
  }
}

}  // namespace persist
}  // namespace sofa
