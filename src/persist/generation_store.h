// Durable generation store — the crash-consistent persistence layer that
// turns the ingest path's in-memory generations into an operable,
// restartable deployment (ROADMAP: "persist compacted generations so
// Checkpoint() can truncate the WAL in the default deployment").
//
// A *generation* on disk is one directory holding everything needed to
// restart a serving process into the exact answer set it was publishing:
//
//   <root>/gen-<seq>/
//     MANIFEST           versioned, CRC-framed commit record (written last)
//     shard-<s>.idx      shard s's tree + scheme (index::SaveIndex format)
//     shard-<s>.rows     shard s's tree-covered slice: rows + global ids
//     shard-<s>.tail     shard s's rows buffered past the tree cut
//     shard-<s>.rq       shard s's quantized pruning sidecar (only when
//                        the compressed tier was on at persist time)
//
// The manifest records the generation's publish sequence number, the id
// watermark (`next_id`), the build-time partition total that global-id
// routing depends on, the live tombstone snapshot, the WAL fold point
// (last folded record seqno + first tail segment), and a byte size +
// CRC32 for every shard file — so a load can prove each slice intact and
// a restart can replay exactly the WAL records the directory does not
// already cover. FAISS-style serving stacks treat such versioned index
// artifacts as the unit of deployment and recovery (Johnson et al.,
// billion-scale similarity search); this store is that unit for the
// sharded ingest path.
//
// Commit protocol (write-temp + fsync + rename): Persist() stages the
// whole directory as <root>/gen-<seq>.tmp, fsyncs every file and the
// staged directory, renames it to its final name, and fsyncs <root>. The
// rename is the commit point — a crash at any earlier moment leaves only
// a .tmp husk that loaders ignore and the next GC sweeps; a crash after
// it leaves a fully valid generation. Readers (LoadLatest) walk
// committed directories newest-first and fall back across any that fail
// validation (torn manifest, missing or corrupt shard file), so the
// newest *provably intact* generation wins. Unchanged shard files are
// hardlinked from the previous committed generation when possible
// (compaction replaces one shard per publish; the other N-1 slices are
// bit-identical), so the steady-state persist cost is O(changed shard +
// buffered tails), not O(collection).
//
// Garbage collection: RemoveGenerationsBelow(seq) deletes committed
// directories (and stale .tmp husks) below `seq`. The Compactor gates
// its calls on the publish-seq retirement logic that already bounds
// buffer-chunk reclamation AND on the newest commit having succeeded, so
// the directory a fallback recovery would need is never deleted while a
// newer commit could still be torn. The store is single-writer:
// exactly one process persists and GCs a given root at a time (the
// serving process owning the WAL); concurrent *loads* are safe — a
// directory GC'd mid-load just fails validation and falls back.

#ifndef SOFA_PERSIST_GENERATION_STORE_H_
#define SOFA_PERSIST_GENERATION_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "obs/registry.h"
#include "shard/sharded_index.h"
#include "util/thread_pool.h"

namespace sofa {
namespace persist {

/// Per-shard file accounting inside a manifest: byte size + CRC32 of
/// each shard file, plus the shard's lineage counter
/// (shard::Shard::generation) that hardlink reuse keys on. rq_bytes == 0
/// means the shard has no quantized sidecar (tier off at persist time,
/// or a v1 manifest predating the .rq format) — loaders asked for the
/// tier rebuild the sidecar from the slice instead.
struct ManifestShard {
  std::uint64_t shard_generation = 0;
  std::uint64_t index_bytes = 0;
  std::uint32_t index_crc = 0;
  std::uint64_t slice_bytes = 0;
  std::uint32_t slice_crc = 0;
  std::uint64_t tail_bytes = 0;
  std::uint32_t tail_crc = 0;
  std::uint64_t rq_bytes = 0;  // manifest v2; 0 = no sidecar persisted
  std::uint32_t rq_crc = 0;
};

/// The decoded commit record of one generation directory.
struct GenerationManifest {
  std::uint64_t generation_seq = 0;  // publish sequence number
  std::uint64_t next_id = 0;         // first unallocated global id
  std::uint64_t route_total = 0;     // build-time partition total (routing)
  std::uint64_t series_length = 0;
  shard::ShardAssignment assignment = shard::ShardAssignment::kContiguous;
  std::uint64_t wal_last_seqno = 0;  // WAL records ≤ this are folded in
  std::uint64_t wal_segment_seq = 0; // first segment of the WAL tail
  std::vector<std::uint32_t> tombstones;  // live (un-purged), sorted
  std::vector<ManifestShard> shards;
};

/// Everything Persist() snapshots of one published generation. All
/// handles must stay valid for the duration of the call; `sharded` is
/// immutable and `buffer_rows`/`buffer_ids` are the caller's copies of
/// each shard's rows past the tree cut (ascending global ids).
struct PersistRequest {
  std::uint64_t generation_seq = 0;
  std::uint64_t next_id = 0;
  std::uint64_t route_total = 0;
  std::uint64_t wal_last_seqno = 0;
  std::uint64_t wal_segment_seq = 0;
  std::shared_ptr<const shard::ShardedIndex> sharded;
  std::vector<Dataset> buffer_rows;                 // per shard
  std::vector<std::vector<std::uint32_t>> buffer_ids;  // per shard
  std::vector<std::uint32_t> tombstones;            // sorted
};

/// A generation reloaded from disk: the reassembled sharded index plus
/// the buffered tails and bookkeeping a Compactor needs to resume
/// exactly where the manifest's fold point left off (see
/// ingest::RecoveredBase).
struct LoadedGeneration {
  GenerationManifest manifest;
  std::shared_ptr<const shard::ShardedIndex> sharded;
  std::vector<std::shared_ptr<const Dataset>> buffer_rows;  // per shard
  std::vector<std::vector<std::uint32_t>> buffer_ids;       // per shard
};

class GenerationStore {
 public:
  /// Opens (creating if missing) the store rooted at `root`. Returns
  /// nullptr when the directory cannot be created. With `registry` set
  /// the store publishes sofa_persist_* instruments there (commit
  /// duration, fsync count, GC-reclaimed bytes); the registry must
  /// outlive the store.
  static std::unique_ptr<GenerationStore> Open(
      const std::string& root, obs::Registry* registry = nullptr);

  /// Committed generation sequence numbers, ascending. (.tmp husks and
  /// foreign files are ignored.)
  std::vector<std::uint64_t> ListGenerations() const;

  /// Atomically persists one generation (see the commit protocol above).
  /// Returns false on any I/O failure, in which case no committed
  /// directory was created or modified — at most a .tmp husk remains for
  /// the next GC. Thread-compatible: one Persist/GC caller at a time.
  bool Persist(const PersistRequest& request);

  /// Loads the newest committed generation that validates end to end
  /// (manifest CRC, per-file sizes and CRCs, index deserialization),
  /// falling back across torn or corrupt ones; nullopt when none loads.
  /// `pool` backs the reassembled index's query scatter and must outlive
  /// it. With `enable_rowq` the reassembled shards carry the compressed
  /// pruning tier: persisted shard-<s>.rq sidecars are validated and
  /// attached, and shards without one (tier off at persist time, or a
  /// v1 generation predating the format) get a sidecar rebuilt
  /// on-the-fly from the slice; the loaded ShardingConfig then has
  /// enable_rowq set so post-restart compactions keep the tier.
  std::optional<LoadedGeneration> LoadLatest(ThreadPool* pool,
                                             bool enable_rowq = false) const;

  /// Loads one specific committed generation (test/tooling entry point);
  /// nullopt when it does not validate. Same `enable_rowq` contract as
  /// LoadLatest.
  std::optional<LoadedGeneration> LoadGeneration(
      std::uint64_t seq, ThreadPool* pool, bool enable_rowq = false) const;

  /// Test hook: rewrites an already-committed generation directory's
  /// MANIFEST as format version 1 (dropping the per-shard .rq
  /// accounting), emulating a generation persisted by a pre-rowq build.
  /// Returns false when the directory holds no valid manifest.
  static bool DowngradeManifestForTesting(const std::string& dir);

  /// Deletes every committed generation directory with sequence number
  /// below `keep_seq`, plus any staging husk below it. See the GC
  /// contract above.
  void RemoveGenerationsBelow(std::uint64_t keep_seq);

  const std::string& root() const { return root_; }

 private:
  GenerationStore(std::string root, obs::Registry* registry);

  std::string GenerationDir(std::uint64_t seq) const;
  bool PersistImpl(const PersistRequest& request, std::uint64_t* fsyncs);

  const std::string root_;

  // sofa_persist_* instruments (null without a registry).
  obs::Histogram* commit_ms_ = nullptr;
  obs::Counter* fsync_total_ = nullptr;
  obs::Counter* gc_reclaimed_bytes_ = nullptr;

  // Hardlink-reuse memo: the last manifest this *process* committed and
  // its directory. Empty after open — the first persist of a process
  // writes every file fresh.
  std::optional<GenerationManifest> last_manifest_;
  std::string last_dir_;
};

}  // namespace persist
}  // namespace sofa

#endif  // SOFA_PERSIST_GENERATION_STORE_H_
