// IndexFlatL2 — the FAISS-style exact brute-force baseline
// (paper Section V, competitor [18]).
//
// Exact L2 search via the blocked ‖x‖²+‖y‖²−2x·y formulation with
// precomputed row norms and SIMD dot products. As in the paper's FAISS
// setup, a single query runs serially (FAISS cannot parallelize inside one
// query) while batches are embarrassingly parallel across queries with
// mini-batches sized to the core count.

#ifndef SOFA_FLAT_INDEX_FLAT_L2_H_
#define SOFA_FLAT_INDEX_FLAT_L2_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "core/dataset.h"
#include "core/neighbor.h"
#include "quant/rowq.h"
#include "util/aligned.h"

namespace sofa {

class ThreadPool;

namespace flat {

/// Exact flat L2 index over a dataset (which must outlive the index).
class IndexFlatL2 {
 public:
  /// Precomputes the database row norms (the "index construction").
  IndexFlatL2(const Dataset* data, ThreadPool* pool);

  /// Exact k-NN of one query, ascending by distance; serial.
  std::vector<Neighbor> SearchKnn(const float* query, std::size_t k) const;

  /// Exact 1-NN of one query; serial.
  Neighbor Search1Nn(const float* query) const;

  /// Batched exact k-NN, parallel across queries; result[i] answers
  /// queries.row(i).
  std::vector<std::vector<Neighbor>> SearchBatch(const Dataset& queries,
                                                 std::size_t k) const;

  /// Seconds spent precomputing norms (Fig. 7's "index creation" for
  /// FAISS).
  double build_seconds() const { return build_seconds_; }

  const Dataset& data() const { return *data_; }

  /// Attaches the compressed pruning tier (quant::RowQuant over the same
  /// dataset, row-aligned). SearchKnn then skips rows whose quantized
  /// lower bound — minus a per-query absolute slack covering the
  /// ‖x‖²+‖y‖²−2x·y formulation's magnitude-scaled rounding — already
  /// meets the k-th best, without changing any reported id or distance.
  /// Not thread-safe: attach before issuing queries. Null detaches.
  void AttachRowQuant(std::shared_ptr<const quant::RowQuant> rowq);
  const std::shared_ptr<const quant::RowQuant>& rowq() const { return rowq_; }

 private:
  const Dataset* data_;
  ThreadPool* pool_;
  AlignedVector<float> norms_sq_;
  double build_seconds_ = 0.0;

  // Compressed pruning tier (null = off) and the ingredients of its
  // per-query slack: the dot-trick distance can round *below* the true
  // value by an amount scaling with the operand magnitudes, so flat
  // pruning subtracts slack_coeff_ * (‖q‖² + max_i ‖y_i‖²) from every
  // quantized bound before comparing.
  std::shared_ptr<const quant::RowQuant> rowq_;
  float max_norm_sq_ = 0.0f;
  float slack_coeff_ = 0.0f;
};

}  // namespace flat
}  // namespace sofa

#endif  // SOFA_FLAT_INDEX_FLAT_L2_H_
