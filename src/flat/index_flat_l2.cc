#include "flat/index_flat_l2.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>

#include "core/distance.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sofa {
namespace flat {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

struct HeapEntry {
  float dist_sq;
  std::uint32_t id;
  bool operator<(const HeapEntry& other) const {
    return dist_sq < other.dist_sq;
  }
};

}  // namespace

IndexFlatL2::IndexFlatL2(const Dataset* data, ThreadPool* pool)
    : data_(data), pool_(pool) {
  SOFA_CHECK(data_ != nullptr);
  SOFA_CHECK(pool_ != nullptr);
  WallTimer timer;
  norms_sq_.resize(data_->size());
  ParallelFor(pool_, data_->size(),
              [&](std::size_t begin, std::size_t end, std::size_t) {
                for (std::size_t i = begin; i < end; ++i) {
                  norms_sq_[i] = SquaredNorm(data_->row(i), data_->length());
                }
              });
  build_seconds_ = timer.Seconds();
}

void IndexFlatL2::AttachRowQuant(std::shared_ptr<const quant::RowQuant> rowq) {
  rowq_ = std::move(rowq);
  if (rowq_ == nullptr) {
    return;
  }
  SOFA_CHECK(rowq_->rows() == data_->size());
  max_norm_sq_ = 0.0f;
  for (std::size_t i = 0; i < norms_sq_.size(); ++i) {
    max_norm_sq_ = std::max(max_norm_sq_, norms_sq_[i]);
  }
  // Absolute slack coefficient for the dot-trick rounding: every term of
  // ‖q‖² + ‖y‖² − 2·q·y is bounded in magnitude by ‖q‖² + ‖y‖², and its
  // float evaluation accumulates O(n) roundings of such magnitudes, so
  // (n + 64)·2⁻²¹ · (‖q‖² + max‖y‖²) over-covers the worst downward
  // error by a wide margin (the admissibility property test exercises
  // this bound against adversarial values).
  slack_coeff_ = static_cast<float>(
      static_cast<double>(data_->length() + 64) * 4.76837158203125e-7);
}

std::vector<Neighbor> IndexFlatL2::SearchKnn(const float* query,
                                             std::size_t k) const {
  if (data_->empty() || k == 0) {
    return {};
  }
  k = std::min(k, data_->size());
  const std::size_t n = data_->length();
  const float query_norm_sq = SquaredNorm(query, n);
  std::optional<quant::RowQuantView> rowq_view;
  float slack = 0.0f;
  if (rowq_ != nullptr) {
    rowq_view.emplace(rowq_.get(), query);
    slack = slack_coeff_ * (query_norm_sq + max_norm_sq_);
  }
  std::priority_queue<HeapEntry> heap;
  for (std::size_t i = 0; i < data_->size(); ++i) {
    // Compressed tier: skip a row whose quantized bound (minus the
    // dot-trick slack) already meets the k-th best. Admission below is
    // strict `<`, so answers — ids and distances — are bit-identical
    // with the tier on or off.
    if (rowq_view && heap.size() == k && rowq_view->prunable(i) &&
        heap.top().dist_sq < kInf &&
        rowq_view->LowerBoundEarlyAbandon(
            i, rowq_view->RawAbandonThreshold(
                   heap.top().dist_sq + slack, 1.0f)) -
                slack >=
            heap.top().dist_sq) {
      continue;
    }
    // d² = ‖q‖² + ‖y‖² − 2·q·y; clamp tiny negative rounding to 0.
    const float d = std::max(
        0.0f, query_norm_sq + norms_sq_[i] -
                  2.0f * DotProduct(query, data_->row(i), n));
    if (heap.size() < k) {
      heap.push(HeapEntry{d, static_cast<std::uint32_t>(i)});
    } else if (d < heap.top().dist_sq) {
      heap.pop();
      heap.push(HeapEntry{d, static_cast<std::uint32_t>(i)});
    }
  }
  std::vector<Neighbor> result;
  result.reserve(heap.size());
  while (!heap.empty()) {
    result.push_back(Neighbor{heap.top().id, std::sqrt(heap.top().dist_sq)});
    heap.pop();
  }
  std::reverse(result.begin(), result.end());
  return result;
}

Neighbor IndexFlatL2::Search1Nn(const float* query) const {
  SOFA_CHECK(!data_->empty()) << "1-NN query on an empty collection";
  // Fast path without a heap.
  const std::size_t n = data_->length();
  const float query_norm_sq = SquaredNorm(query, n);
  float best = kInf;
  std::uint32_t best_id = 0;
  for (std::size_t i = 0; i < data_->size(); ++i) {
    const float d = query_norm_sq + norms_sq_[i] -
                    2.0f * DotProduct(query, data_->row(i), n);
    if (d < best) {
      best = d;
      best_id = static_cast<std::uint32_t>(i);
    }
  }
  return Neighbor{best_id, std::sqrt(std::max(0.0f, best))};
}

std::vector<std::vector<Neighbor>> IndexFlatL2::SearchBatch(
    const Dataset& queries, std::size_t k) const {
  SOFA_CHECK_EQ(queries.length(), data_->length());
  std::vector<std::vector<Neighbor>> results(queries.size());
  // Embarrassingly parallel across queries (the paper's FAISS usage:
  // mini-batches equal to the core count).
  DynamicParallelFor(pool_, queries.size(), 1,
                     [&](std::size_t begin, std::size_t end, std::size_t) {
                       for (std::size_t q = begin; q < end; ++q) {
                         results[q] = SearchKnn(queries.row(q), k);
                       }
                     });
  return results;
}

}  // namespace flat
}  // namespace sofa
