#include "subseq/mass.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "subseq/rolling_stats.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace sofa {
namespace subseq {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

}  // namespace

MassPlan::MassPlan(std::size_t series_length, std::size_t query_length)
    : n_(series_length),
      m_(query_length),
      fft_(dft::NextPowerOfTwo(series_length + query_length)) {
  SOFA_CHECK(m_ > 0 && m_ <= n_)
      << "query length " << m_ << " over series length " << n_;
}

void MassPlan::DistanceProfile(const float* series, const float* query,
                               float* profile, Scratch* scratch) const {
  Scratch local;
  if (scratch == nullptr) {
    scratch = &local;
  }
  const std::size_t conv = fft_.size();

  // Query stats; a constant query has no z-normalized form.
  double q_sum = 0.0;
  double q_sum_sq = 0.0;
  for (std::size_t j = 0; j < m_; ++j) {
    q_sum += query[j];
    q_sum_sq += static_cast<double>(query[j]) * query[j];
  }
  const double q_mean = q_sum / static_cast<double>(m_);
  const double q_var = std::max(
      0.0, q_sum_sq / static_cast<double>(m_) - q_mean * q_mean);
  SOFA_CHECK(q_var > 0.0) << "constant query has no z-normalized form";
  const double q_std = std::sqrt(q_var);

  // Sliding dot products via one convolution: T ⊛ reverse(Q), so
  // QT[i] = conv[m − 1 + i].
  auto& t_buf = scratch->series_spectrum;
  auto& q_buf = scratch->query_spectrum;
  t_buf.assign(conv, {0.0, 0.0});
  q_buf.assign(conv, {0.0, 0.0});
  for (std::size_t t = 0; t < n_; ++t) {
    t_buf[t] = {static_cast<double>(series[t]), 0.0};
  }
  for (std::size_t j = 0; j < m_; ++j) {
    q_buf[j] = {static_cast<double>(query[m_ - 1 - j]), 0.0};
  }
  fft_.Forward(t_buf.data(), &scratch->fft);
  fft_.Forward(q_buf.data(), &scratch->fft);
  for (std::size_t t = 0; t < conv; ++t) {
    t_buf[t] *= q_buf[t];
  }
  fft_.Inverse(t_buf.data(), &scratch->fft);

  const RollingStats stats = ComputeRollingStats(series, n_, m_);
  const auto md = static_cast<double>(m_);
  for (std::size_t i = 0; i < profile_length(); ++i) {
    if (stats.std[i] <= 0.0) {
      profile[i] = kInf;
      continue;
    }
    const double qt = t_buf[m_ - 1 + i].real();
    // Pearson correlation of the two z-normalized windows, clamped
    // against floating-point drift, then d² = 2m(1 − r).
    const double r = (qt - md * q_mean * stats.mean[i]) /
                     (md * q_std * stats.std[i]);
    const double clamped = std::clamp(r, -1.0, 1.0);
    profile[i] = static_cast<float>(std::sqrt(2.0 * md * (1.0 - clamped)));
  }
}

std::vector<SubseqMatch> MassPlan::TopK(const float* series,
                                        const float* query,
                                        std::size_t k) const {
  std::vector<float> profile(profile_length());
  DistanceProfile(series, query, profile.data());
  return TopKFromProfile(profile.data(), profile.size(), k, m_ / 2);
}

void ParallelDistanceProfile(const float* series, std::size_t n,
                             const float* query, std::size_t m,
                             float* profile, ThreadPool* pool,
                             std::size_t chunk_windows) {
  SOFA_CHECK(pool != nullptr);
  SOFA_CHECK(m > 0 && m <= n);
  const std::size_t total_windows = n - m + 1;
  if (chunk_windows == 0) {
    // Two chunks per worker for load balance, but never so small that the
    // m − 1 overlap dominates the work.
    const std::size_t per_worker =
        (total_windows + 2 * pool->size() - 1) / (2 * pool->size());
    chunk_windows = std::max(per_worker, 4 * m);
  }
  chunk_windows = std::min(chunk_windows, total_windows);
  const std::size_t num_chunks =
      (total_windows + chunk_windows - 1) / chunk_windows;

  // One plan for the full-size chunks, one for the (shorter) tail when it
  // differs; plans are immutable and shared, scratch is per task.
  const std::size_t full_chunk_points = chunk_windows + m - 1;
  const MassPlan full_plan(full_chunk_points, m);
  const std::size_t tail_windows =
      total_windows - (num_chunks - 1) * chunk_windows;
  const bool tail_differs = tail_windows != chunk_windows;
  const MassPlan tail_plan(tail_differs ? tail_windows + m - 1 : m, m);

  for (std::size_t c = 0; c < num_chunks; ++c) {
    pool->Submit([&, c] {
      const std::size_t first_window = c * chunk_windows;
      const bool is_tail = tail_differs && c + 1 == num_chunks;
      const MassPlan& plan = is_tail ? tail_plan : full_plan;
      MassPlan::Scratch scratch;
      plan.DistanceProfile(series + first_window, query,
                           profile + first_window, &scratch);
    });
  }
  pool->Wait();
}

}  // namespace subseq
}  // namespace sofa
