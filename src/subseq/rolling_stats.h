// Rolling window statistics for subsequence search.
//
// Both MASS and the UCR-style subsequence scan z-normalize every length-m
// window of a long series on the fly; the per-window mean and standard
// deviation come from prefix sums of x and x², computed once in O(n).

#ifndef SOFA_SUBSEQ_ROLLING_STATS_H_
#define SOFA_SUBSEQ_ROLLING_STATS_H_

#include <cstddef>
#include <vector>

namespace sofa {
namespace subseq {

/// Mean and standard deviation of every length-m window.
struct RollingStats {
  std::vector<double> mean;  // n − m + 1 entries
  std::vector<double> std;   // population std; 0 for constant windows
};

/// Computes rolling stats over `series` (length n) for windows of length m
/// (0 < m ≤ n). Double-precision prefix sums; tiny negative variances from
/// cancellation are clamped to zero.
RollingStats ComputeRollingStats(const float* series, std::size_t n,
                                 std::size_t m);

}  // namespace subseq
}  // namespace sofa

#endif  // SOFA_SUBSEQ_ROLLING_STATS_H_
