#include "subseq/rolling_stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sofa {
namespace subseq {

RollingStats ComputeRollingStats(const float* series, std::size_t n,
                                 std::size_t m) {
  SOFA_CHECK(m > 0 && m <= n)
      << "window length " << m << " over series length " << n;
  const std::size_t windows = n - m + 1;
  std::vector<double> sum(n + 1, 0.0);
  std::vector<double> sum_sq(n + 1, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    sum[t + 1] = sum[t] + series[t];
    sum_sq[t + 1] = sum_sq[t] + static_cast<double>(series[t]) * series[t];
  }
  RollingStats stats;
  stats.mean.resize(windows);
  stats.std.resize(windows);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t i = 0; i < windows; ++i) {
    const double mean = (sum[i + m] - sum[i]) * inv_m;
    const double second_moment = (sum_sq[i + m] - sum_sq[i]) * inv_m;
    double var = std::max(0.0, second_moment - mean * mean);
    // Prefix-sum cancellation leaves O(1e-13)-relative residues on
    // constant windows; below this relative floor the window is flat.
    if (var <= 1e-10 * std::max(1.0, second_moment)) {
      var = 0.0;
    }
    stats.mean[i] = mean;
    stats.std[i] = std::sqrt(var);
  }
  return stats;
}

}  // namespace subseq
}  // namespace sofa
