// Shared subsequence-search types: a match, and top-k extraction from a
// distance profile with an exclusion zone (so the k matches are distinct
// events, not the same event at k adjacent offsets).

#ifndef SOFA_SUBSEQ_SUBSEQ_MATCH_H_
#define SOFA_SUBSEQ_SUBSEQ_MATCH_H_

#include <cstddef>
#include <vector>

namespace sofa {
namespace subseq {

/// One subsequence match: the window start offset and its z-normalized
/// Euclidean distance to the query.
struct SubseqMatch {
  std::size_t position = 0;
  float distance = 0.0f;

  bool operator==(const SubseqMatch& other) const {
    return position == other.position && distance == other.distance;
  }
};

/// Lowest-k positions of a distance profile, ascending by distance,
/// suppressing any position within `exclusion` offsets of an already
/// selected (strictly better) one. exclusion 0 = plain top-k. The matrix-
/// profile convention is exclusion = m/2 for query length m.
std::vector<SubseqMatch> TopKFromProfile(const float* profile,
                                         std::size_t count, std::size_t k,
                                         std::size_t exclusion);

}  // namespace subseq
}  // namespace sofa

#endif  // SOFA_SUBSEQ_SUBSEQ_MATCH_H_
