// UCR-suite-style subsequence search under z-normalized ED [17].
//
// The scan alternative to MASS: slide the query over the series, z-
// normalizing each window on the fly from rolling stats, with the two
// signature UCR-suite optimizations for whole-matching under ED:
//
//   * query reordering — accumulate the squared differences in order of
//     decreasing |z(q)|, so the largest contributions come first and the
//     early-abandon test trips as soon as possible;
//   * early abandoning — stop a window once its partial sum exceeds the
//     best-so-far distance.
//
// Where MASS always pays O(n log n), the scan pays O(n · m) worst case
// but typically abandons after a handful of points per window; the
// crossover is measured in bench/relwork_subsequence.cpp.

#ifndef SOFA_SUBSEQ_UCR_SUBSEQ_H_
#define SOFA_SUBSEQ_UCR_SUBSEQ_H_

#include <cstddef>

#include "subseq/subseq_match.h"

namespace sofa {
namespace subseq {

/// Work counters for one scan.
struct UcrSubseqProfile {
  std::size_t windows = 0;          // windows examined (non-flat)
  std::size_t flat_windows = 0;     // skipped, σ = 0
  std::size_t points_touched = 0;   // query points accumulated in total
};

/// Best z-normalized-ED match of `query` (length m) over all length-m
/// windows of `series` (length n). Flat windows are skipped; aborts if the
/// query is constant or every window is flat. `profile` (optional)
/// receives work counters — points_touched / (windows·m) is the measured
/// abandon rate.
SubseqMatch FindBestMatch(const float* series, std::size_t n,
                          const float* query, std::size_t m,
                          UcrSubseqProfile* profile = nullptr);

}  // namespace subseq
}  // namespace sofa

#endif  // SOFA_SUBSEQ_UCR_SUBSEQ_H_
