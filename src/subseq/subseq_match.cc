#include "subseq/subseq_match.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

namespace sofa {
namespace subseq {

std::vector<SubseqMatch> TopKFromProfile(const float* profile,
                                         std::size_t count, std::size_t k,
                                         std::size_t exclusion) {
  std::vector<std::uint32_t> order(count);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [profile](std::uint32_t a, std::uint32_t b) {
              return profile[a] < profile[b] ||
                     (profile[a] == profile[b] && a < b);
            });
  std::vector<SubseqMatch> matches;
  for (const std::uint32_t position : order) {
    if (matches.size() == k) {
      break;
    }
    if (std::isinf(profile[position])) {
      break;  // only degenerate (flat) windows remain
    }
    bool excluded = false;
    for (const SubseqMatch& chosen : matches) {
      const std::size_t gap = chosen.position > position
                                  ? chosen.position - position
                                  : position - chosen.position;
      if (gap <= exclusion) {
        excluded = true;
        break;
      }
    }
    if (!excluded) {
      matches.push_back(SubseqMatch{position, profile[position]});
    }
  }
  return matches;
}

}  // namespace subseq
}  // namespace sofa
