#include "subseq/ucr_subseq.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "subseq/rolling_stats.h"
#include "util/check.h"

namespace sofa {
namespace subseq {

SubseqMatch FindBestMatch(const float* series, std::size_t n,
                          const float* query, std::size_t m,
                          UcrSubseqProfile* profile) {
  SOFA_CHECK(m > 0 && m <= n)
      << "query length " << m << " over series length " << n;

  // Z-normalize the query once.
  double q_sum = 0.0;
  double q_sum_sq = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    q_sum += query[j];
    q_sum_sq += static_cast<double>(query[j]) * query[j];
  }
  const double q_mean = q_sum / static_cast<double>(m);
  const double q_var =
      std::max(0.0, q_sum_sq / static_cast<double>(m) - q_mean * q_mean);
  SOFA_CHECK(q_var > 0.0) << "constant query has no z-normalized form";
  const double q_inv_std = 1.0 / std::sqrt(q_var);
  std::vector<double> qz(m);
  for (std::size_t j = 0; j < m; ++j) {
    qz[j] = (query[j] - q_mean) * q_inv_std;
  }

  // UCR reordering: largest |z(q)| first.
  std::vector<std::uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&qz](std::uint32_t a, std::uint32_t b) {
              return std::fabs(qz[a]) > std::fabs(qz[b]);
            });

  const RollingStats stats = ComputeRollingStats(series, n, m);
  UcrSubseqProfile local;
  double best_sq = std::numeric_limits<double>::infinity();
  std::size_t best_position = 0;
  bool found = false;
  for (std::size_t i = 0; i + m <= n; ++i) {
    if (stats.std[i] <= 0.0) {
      ++local.flat_windows;
      continue;
    }
    ++local.windows;
    const double mean = stats.mean[i];
    const double inv_std = 1.0 / stats.std[i];
    double sum = 0.0;
    std::size_t touched = 0;
    for (const std::uint32_t j : order) {
      const double diff = qz[j] - (series[i + j] - mean) * inv_std;
      sum += diff * diff;
      ++touched;
      if (sum > best_sq) {
        break;
      }
    }
    local.points_touched += touched;
    if (sum < best_sq) {
      best_sq = sum;
      best_position = i;
      found = true;
    }
  }
  SOFA_CHECK(found) << "every window of the series is constant";
  if (profile != nullptr) {
    *profile = local;
  }
  return SubseqMatch{best_position,
                     static_cast<float>(std::sqrt(best_sq))};
}

}  // namespace subseq
}  // namespace sofa
