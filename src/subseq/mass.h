// MASS — Mueen's Algorithm for Similarity Search (Zhong & Mueen [50]).
//
// Computes the full z-normalized distance profile of a query Q (length m)
// against every length-m window of a long series T (length n) in
// O(n log n), independent of m: the sliding dot products QT[i] come from
// one FFT convolution, and the profile follows from the closed form
//
//   d²[i] = 2m · (1 − (QT[i] − m·μ_Q·μ_i) / (m·σ_Q·σ_i)),
//
// with rolling window stats (μ_i, σ_i) from prefix sums. Windows with
// σ_i = 0 cannot be z-normalized and get +inf.
//
// The paper contrasts MASS with the UCR suite for whole-series matching
// (Section III, citing Fig. 3 of [51]): MASS pays the full O(n log n)
// regardless of pruning opportunities, while an early-abandoning scan
// often touches a fraction of each window. bench/relwork_subsequence.cpp
// measures that trade; examples use MASS where the whole profile (not
// just the 1-NN) is wanted.

#ifndef SOFA_SUBSEQ_MASS_H_
#define SOFA_SUBSEQ_MASS_H_

#include <complex>
#include <cstddef>
#include <vector>

#include "dft/fft.h"
#include "subseq/subseq_match.h"

namespace sofa {

class ThreadPool;

namespace subseq {

/// Immutable plan for distance profiles of one (series length, query
/// length) combination; shareable across threads via per-thread Scratch.
class MassPlan {
 public:
  /// Per-thread buffers.
  struct Scratch {
    dft::Fft::Scratch fft;
    std::vector<std::complex<double>> series_spectrum;
    std::vector<std::complex<double>> query_spectrum;
  };

  /// Plans profiles of length-m queries over length-n series
  /// (0 < m ≤ n).
  MassPlan(std::size_t series_length, std::size_t query_length);

  std::size_t series_length() const { return n_; }
  std::size_t query_length() const { return m_; }

  /// Number of windows: n − m + 1.
  std::size_t profile_length() const { return n_ - m_ + 1; }

  /// Writes the z-normalized Euclidean distance profile (profile_length()
  /// floats; +inf for flat windows). Aborts if the query is constant.
  /// `scratch` may be nullptr (allocates internally).
  void DistanceProfile(const float* series, const float* query,
                       float* profile, Scratch* scratch = nullptr) const;

  /// Convenience: profile + top-k extraction with the matrix-profile
  /// exclusion zone m/2 (allocates).
  std::vector<SubseqMatch> TopK(const float* series, const float* query,
                                std::size_t k) const;

 private:
  std::size_t n_;
  std::size_t m_;
  dft::Fft fft_;  // convolution length: next pow2 ≥ n + m
};

/// Chunked, thread-parallel distance profile — the classic batch-MASS
/// trick: the stream is cut into overlapping pieces (chunk_windows
/// windows each, so chunk_windows + m − 1 points with m − 1 overlap),
/// each piece gets its own small-FFT MASS on a pool worker, and the
/// window ranges are disjoint so results stitch without synchronization.
/// Produces the same profile as MassPlan::DistanceProfile (up to FFT
/// rounding) while using cache-sized transforms on every core.
/// chunk_windows 0 = auto (balanced across the pool, ≥ 4·m).
void ParallelDistanceProfile(const float* series, std::size_t n,
                             const float* query, std::size_t m,
                             float* profile, ThreadPool* pool,
                             std::size_t chunk_windows = 0);

}  // namespace subseq
}  // namespace sofa

#endif  // SOFA_SUBSEQ_MASS_H_
