#include "scan/ucr_scan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "core/distance.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace sofa {
namespace scan {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

struct HeapEntry {
  float dist_sq;
  std::uint32_t id;
  bool operator<(const HeapEntry& other) const {  // max-heap on distance
    return dist_sq < other.dist_sq;
  }
};

using LocalHeap = std::priority_queue<HeapEntry>;

// Scans [begin, end) into a bounded local heap with early abandoning
// against the thread-local k-th best.
void ScanRange(const Dataset& data, const float* query, std::size_t k,
               std::size_t begin, std::size_t end, LocalHeap* heap) {
  const std::size_t n = data.length();
  for (std::size_t i = begin; i < end; ++i) {
    const float bound = heap->size() == k ? heap->top().dist_sq : kInf;
    const float d =
        SquaredEuclideanEarlyAbandon(query, data.row(i), n, bound);
    if (heap->size() < k) {
      heap->push(HeapEntry{d, static_cast<std::uint32_t>(i)});
    } else if (d < bound) {
      heap->pop();
      heap->push(HeapEntry{d, static_cast<std::uint32_t>(i)});
    }
  }
}

}  // namespace

UcrScan::UcrScan(const Dataset* data, ThreadPool* pool)
    : data_(data), pool_(pool) {
  SOFA_CHECK(data_ != nullptr);
  SOFA_CHECK(pool_ != nullptr);
}

Neighbor UcrScan::Search1Nn(const float* query) const {
  const std::vector<Neighbor> result = SearchKnn(query, 1);
  SOFA_CHECK(!result.empty()) << "1-NN query on an empty collection";
  return result[0];
}

std::vector<Neighbor> UcrScan::SearchKnn(const float* query,
                                         std::size_t k) const {
  if (data_->empty() || k == 0) {
    return {};
  }
  k = std::min(k, data_->size());
  std::vector<LocalHeap> heaps(pool_->size());
  ParallelFor(pool_, data_->size(),
              [&](std::size_t begin, std::size_t end, std::size_t worker) {
                ScanRange(*data_, query, k, begin, end, &heaps[worker]);
              });
  // The single synchronization point: merge the thread-local heaps.
  LocalHeap merged;
  for (auto& heap : heaps) {
    while (!heap.empty()) {
      if (merged.size() < k) {
        merged.push(heap.top());
      } else if (heap.top().dist_sq < merged.top().dist_sq) {
        merged.pop();
        merged.push(heap.top());
      }
      heap.pop();
    }
  }
  std::vector<Neighbor> result;
  result.reserve(merged.size());
  while (!merged.empty()) {
    result.push_back(
        Neighbor{merged.top().id, std::sqrt(merged.top().dist_sq)});
    merged.pop();
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace scan
}  // namespace sofa
