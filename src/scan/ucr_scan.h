// UCR Suite-P — the parallel optimized sequential-scan baseline
// (paper Section V, competitor [17]).
//
// Whole-series matching: every thread scans its contiguous segment of the
// in-memory collection with SIMD early-abandoning Euclidean distance
// against a thread-local best-so-far; per the paper's description the
// threads are fully independent and synchronize only once at the end to
// merge their local results.

#ifndef SOFA_SCAN_UCR_SCAN_H_
#define SOFA_SCAN_UCR_SCAN_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/neighbor.h"

namespace sofa {

class ThreadPool;

namespace scan {

/// Parallel exact sequential scan over a z-normalized dataset.
class UcrScan {
 public:
  /// `data` must outlive the scanner; queries run on `pool`.
  UcrScan(const Dataset* data, ThreadPool* pool);

  /// Exact nearest neighbor.
  Neighbor Search1Nn(const float* query) const;

  /// Exact k-NN, ascending by distance (k clamped to the collection size).
  std::vector<Neighbor> SearchKnn(const float* query, std::size_t k) const;

  const Dataset& data() const { return *data_; }

 private:
  const Dataset* data_;
  ThreadPool* pool_;
};

}  // namespace scan
}  // namespace sofa

#endif  // SOFA_SCAN_UCR_SCAN_H_
