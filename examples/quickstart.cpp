// Quickstart: build a SOFA index over a synthetic collection and answer
// exact 1-NN / k-NN queries.
//
//   ./examples/quickstart [--n_series=20000] [--length=256] [--threads=N]
//
// Walks through the full pipeline: generate data → z-normalize (done by the
// generators) → learn the SFA summarization (MCB) → build the tree index →
// query → verify exactness against a sequential scan.

#include <cstdio>

#include "datagen/datasets.h"
#include "index/tree_index.h"
#include "scan/ucr_scan.h"
#include "sfa/mcb.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  Flags flags(argc, argv);
  const std::size_t n_series =
      static_cast<std::size_t>(flags.GetInt("n_series", 20000));
  const std::size_t threads = static_cast<std::size_t>(
      flags.GetInt("threads", static_cast<std::int64_t>(HardwareThreads())));
  ThreadPool pool(threads);

  // 1. A synthetic seismic collection (substitute for the paper's SCEDC).
  datagen::GenerateOptions gen;
  gen.count = n_series;
  gen.num_queries = 5;
  const LabeledDataset dataset =
      datagen::MakeDatasetByName("SCEDC", gen, &pool);
  std::printf("dataset: %s, %zu series of length %zu\n",
              dataset.name.c_str(), dataset.data.size(),
              dataset.data.length());

  // 2. Learn the SFA summarization from a 1%% sample (paper defaults:
  //    16 values, alphabet 256, equi-width bins, variance selection).
  sfa::SfaConfig sfa_config;
  const auto scheme = sfa::TrainSfa(dataset.data, sfa_config, &pool);
  std::printf("scheme:  %s, mean selected DFT coefficient %.1f\n",
              scheme->name().c_str(),
              scheme->MeanSelectedCoefficientIndex());

  // 3. Build the SOFA index.
  index::IndexConfig index_config;
  index_config.leaf_capacity = 2000;
  WallTimer build_timer;
  const index::TreeIndex sofa_index(&dataset.data, scheme.get(),
                                    index_config, &pool);
  std::printf("index:   built in %.3f s (%zu subtrees, %zu leaves)\n",
              build_timer.Seconds(), sofa_index.ComputeStats().num_subtrees,
              sofa_index.ComputeStats().num_leaves);

  // 4. Queries — exact 1-NN and 10-NN, verified against a parallel scan.
  const scan::UcrScan scanner(&dataset.data, &pool);
  for (std::size_t q = 0; q < dataset.queries.size(); ++q) {
    const float* query = dataset.queries.row(q);
    WallTimer timer;
    const Neighbor nn = sofa_index.Search1Nn(query);
    const double index_ms = timer.Millis();
    timer.Reset();
    const Neighbor reference = scanner.Search1Nn(query);
    const double scan_ms = timer.Millis();
    std::printf(
        "query %zu: 1-NN id=%u dist=%.4f in %.2f ms (scan: %.2f ms) %s\n", q,
        nn.id, nn.distance, index_ms, scan_ms,
        std::abs(nn.distance - reference.distance) < 1e-3f ? "exact ✓"
                                                           : "MISMATCH ✗");
  }

  const auto knn = sofa_index.SearchKnn(dataset.queries.row(0), 10);
  std::printf("10-NN of query 0:");
  for (const Neighbor& nb : knn) {
    std::printf(" %u(%.3f)", nb.id, nb.distance);
  }
  std::printf("\n");
  return 0;
}
