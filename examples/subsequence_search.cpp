// Subsequence search on a continuous stream: find every occurrence of an
// event template in a day of seismic-like monitoring data.
//
//   ./examples/subsequence_search [--stream_length=500000] [--k=5]
//
// The whole-series indexes (SOFA/MESSI) answer "which catalogued series
// is closest"; this example covers the complementary task the paper
// delineates in Section III — locating a pattern inside one long series.
// Two tools from the subseq module:
//
//   * MASS: the full z-normalized distance profile in O(n log n), then
//     top-k with an exclusion zone — finds *all* occurrences;
//   * the UCR-style early-abandoning scan — fastest when only the best
//     occurrence matters.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "subseq/mass.h"
#include "subseq/ucr_subseq.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

// Background: slowly-varying microseism noise.
std::vector<float> MakeBackground(std::size_t n, sofa::Rng* rng) {
  std::vector<float> stream(n);
  double level = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    level = 0.995 * level + rng->Gaussian() * 0.3;
    stream[t] = static_cast<float>(level);
  }
  return stream;
}

// An event: exponentially decaying oscillation (a toy P-wave coda).
std::vector<float> MakeEventTemplate(std::size_t m, sofa::Rng* rng) {
  std::vector<float> event(m);
  const double frequency = 0.12 + 0.02 * rng->Uniform();
  for (std::size_t t = 0; t < m; ++t) {
    const double envelope =
        std::exp(-3.0 * static_cast<double>(t) / static_cast<double>(m));
    event[t] = static_cast<float>(
        4.0 * envelope * std::sin(6.2831853 * frequency * t));
  }
  return event;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sofa;
  Flags flags(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(flags.GetInt("stream_length", 500000));
  const std::size_t k = static_cast<std::size_t>(flags.GetInt("k", 5));
  const std::size_t m = 200;  // event template length

  Rng rng(0x5e15);
  std::vector<float> stream = MakeBackground(n, &rng);
  const std::vector<float> event = MakeEventTemplate(m, &rng);

  // Plant k noised, amplitude-scaled copies of the event.
  std::vector<std::size_t> planted;
  for (std::size_t e = 0; e < k; ++e) {
    const std::size_t offset =
        (e + 1) * n / (k + 1) + rng.Below(n / (4 * (k + 1)));
    const double amplitude = 0.8 + 1.5 * rng.Uniform();
    for (std::size_t j = 0; j < m; ++j) {
      stream[offset + j] += static_cast<float>(
          amplitude * event[j] + 0.2 * rng.Gaussian());
    }
    planted.push_back(offset);
  }
  std::printf("stream: %zu points, %zu planted events of length %zu\n",
              n, k, m);
  std::printf("planted at:");
  for (const std::size_t p : planted) {
    std::printf(" %zu", p);
  }
  std::printf("\n\n");

  // 1. MASS: full profile + top-k with exclusion zone m/2.
  subseq::MassPlan plan(n, m);
  WallTimer timer;
  const auto matches = plan.TopK(stream.data(), event.data(), k);
  const double mass_ms = timer.Millis();
  std::printf("MASS profile + top-%zu (%.1f ms):\n", k, mass_ms);
  std::size_t recovered = 0;
  for (const auto& match : matches) {
    bool is_planted = false;
    for (const std::size_t p : planted) {
      const std::size_t gap =
          p > match.position ? p - match.position : match.position - p;
      is_planted |= gap <= m / 4;
    }
    recovered += is_planted ? 1 : 0;
    std::printf("  position %8zu  z-ED %6.2f  %s\n", match.position,
                match.distance, is_planted ? "(planted event)" : "");
  }
  std::printf("  -> %zu/%zu planted events recovered\n\n", recovered, k);

  // 2. UCR-style scan: just the best occurrence, with pruning stats.
  subseq::UcrSubseqProfile profile;
  timer.Reset();
  const subseq::SubseqMatch best =
      subseq::FindBestMatch(stream.data(), n, event.data(), m, &profile);
  const double scan_ms = timer.Millis();
  const double touched =
      100.0 * static_cast<double>(profile.points_touched) /
      (static_cast<double>(profile.windows) * static_cast<double>(m));
  std::printf("UCR-style scan, best match only (%.1f ms):\n", scan_ms);
  std::printf("  position %zu, z-ED %.2f — touched %.1f%% of window "
              "points before abandoning\n",
              best.position, best.distance, touched);
  std::printf("  agrees with MASS argmin: %s\n",
              best.position == matches[0].position ? "yes" : "no");
  return 0;
}
