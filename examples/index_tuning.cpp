// Index tuning — how SOFA's knobs shape query latency.
//
//   ./examples/index_tuning [--dataset=OBS] [--n_series=20000]
//
// Sweeps the three tuning axes the paper analyses: leaf capacity
// (Fig. 11), MCB sampling rate (Table IV) and binning method / feature
// selection (Section V-E), printing one table per axis.

#include <cstdio>

#include "datagen/datasets.h"
#include "index/tree_index.h"
#include "sfa/mcb.h"
#include "sfa/tlb.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace sofa;

double MedianQueryMs(const index::TreeIndex& idx, const Dataset& queries) {
  std::vector<double> ms;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    WallTimer timer;
    (void)idx.Search1Nn(queries.row(q));
    ms.push_back(timer.Millis());
  }
  return stats::Median(ms);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string dataset_name = flags.GetString("dataset", "OBS");
  const std::size_t n_series =
      static_cast<std::size_t>(flags.GetInt("n_series", 20000));
  ThreadPool pool(static_cast<std::size_t>(
      flags.GetInt("threads", static_cast<std::int64_t>(HardwareThreads()))));

  datagen::GenerateOptions gen;
  gen.count = n_series;
  gen.num_queries = 15;
  const LabeledDataset dataset =
      datagen::MakeDatasetByName(dataset_name, gen, &pool);
  std::printf("tuning on %s (%zu series × %zu)\n\n", dataset.name.c_str(),
              dataset.data.size(), dataset.data.length());

  // Axis 1: leaf capacity.
  {
    sfa::SfaConfig config;
    const auto scheme = sfa::TrainSfa(dataset.data, config, &pool);
    TablePrinter table({"leaf capacity", "median query", "leaves",
                        "avg depth"});
    for (const std::size_t leaf : {250u, 500u, 1000u, 2000u, 4000u}) {
      index::IndexConfig index_config;
      index_config.leaf_capacity = leaf;
      const index::TreeIndex idx(&dataset.data, scheme.get(), index_config,
                                 &pool);
      const auto stats = idx.ComputeStats();
      table.AddRow({std::to_string(leaf),
                    FormatSeconds(MedianQueryMs(idx, dataset.queries) / 1e3),
                    std::to_string(stats.num_leaves),
                    FormatDouble(stats.avg_depth, 1)});
    }
    std::printf("leaf-capacity sweep (Fig. 11 axis):\n%s\n",
                table.ToString().c_str());
  }

  // Axis 2: MCB sampling rate.
  {
    TablePrinter table({"sampling", "median query", "TLB"});
    for (const double rate : {0.001, 0.01, 0.05, 0.2}) {
      sfa::SfaConfig config;
      config.sampling_ratio = rate;
      const auto scheme = sfa::TrainSfa(dataset.data, config, &pool);
      index::IndexConfig index_config;
      index_config.leaf_capacity = 2000;
      const index::TreeIndex idx(&dataset.data, scheme.get(), index_config,
                                 &pool);
      table.AddRow({FormatDouble(rate * 100.0, 1) + "%",
                    FormatSeconds(MedianQueryMs(idx, dataset.queries) / 1e3),
                    FormatDouble(sfa::MeanTlb(*scheme, dataset.data,
                                              dataset.queries),
                                 3)});
    }
    std::printf("MCB sampling-rate sweep (Table IV axis):\n%s\n",
                table.ToString().c_str());
  }

  // Axis 3: binning × feature selection.
  {
    TablePrinter table({"variant", "median query", "TLB"});
    for (const bool variance : {true, false}) {
      for (const auto binning : {quant::BinningMethod::kEquiWidth,
                                 quant::BinningMethod::kEquiDepth}) {
        sfa::SfaConfig config;
        config.binning = binning;
        config.variance_selection = variance;
        const auto scheme = sfa::TrainSfa(dataset.data, config, &pool);
        index::IndexConfig index_config;
        index_config.leaf_capacity = 2000;
        const index::TreeIndex idx(&dataset.data, scheme.get(), index_config,
                                   &pool);
        table.AddRow({scheme->name(),
                      FormatSeconds(MedianQueryMs(idx, dataset.queries) / 1e3),
                      FormatDouble(sfa::MeanTlb(*scheme, dataset.data,
                                                dataset.queries),
                                   3)});
      }
    }
    std::printf("summarization variants (Section V-E axis):\n%s",
                table.ToString().c_str());
  }
  return 0;
}
