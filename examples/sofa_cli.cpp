// sofa_cli — end-to-end command-line front end for the library.
//
//   sofa_cli generate --dataset=SCEDC --n_series=20000 --out=data.fvecs
//   sofa_cli build    --data=data.fvecs --index=index.sofa [--scheme=sfa|sax]
//                     [--shards=N] [--assignment=contiguous|hash]
//                     (N > 1 partitions the collection and writes one
//                      index file per shard: index.sofa.shard0 … shardN-1)
//   sofa_cli query    --data=data.fvecs --index=index.sofa
//                     --queries=queries.fvecs [--k=10] [--epsilon=0]
//                     [--rowq] (compressed pruning tier; bit-identical
//                      answers, fewer float rows touched)
//   sofa_cli info     --data=data.fvecs --index=index.sofa
//   sofa_cli dtw-scan --data=data.fvecs --queries=queries.fvecs
//                     [--band=10%len] [--k=1]
//   sofa_cli subseq   --data=stream.fvecs --queries=pattern.fvecs [--k=5]
//                     (row 0 of each file = the stream / the pattern)
//   sofa_cli tlb      --data=data.fvecs --queries=queries.fvecs
//                     [--method=DFT|PAA|APCA|PLA|CHEBY|DHWT] [--word=16]
//   sofa_cli serve    --data=data.fvecs --index=index.sofa
//                     --queries=queries.fvecs [--k=10] [--epsilon=0]
//                     [--mode=auto|latency|throughput] [--batch=64]
//                     [--deadline_ms=0] [--repeat=1]
//                     [--shards=N] [--assignment=contiguous|hash] [--rowq]
//                     [--insert-file=rows.fvecs] [--compact-threshold=1024]
//                     [--delete-file=ids.txt] [--wal-dir=DIR]
//                     [--wal-sync=64] [--data-dir=DIR]
//                     [--stats-file=PATH] [--stats-interval=SECONDS]
//                     [--stats-format=json|prometheus]
//                     [--trace-sample=N] [--slow-query-ms=MS]
//                     [--slow-log=64]
//                     [--listen=HOST:PORT] [--max-connections=64]
//                     [--port-file=PATH] [--max-pending=4096]
//                     [--priority-reserve=N] [--tenant-quota=N]
//                     (`sofa_cli serve --help` documents every flag;
//                      --listen switches serve from file replay to a
//                      long-running TCP server speaking the binary wire
//                      protocol of docs/PROTOCOL.md, with graceful
//                      drain on SIGTERM/SIGINT)
//   sofa_cli stats    --stats-file=PATH [--format=pretty|prometheus|json]
//                     (pretty-prints a JSON stats dump written by serve)
//   sofa_cli stats    --diff BEFORE.json AFTER.json
//                     (diffs two dumps: counters/gauges/histograms that
//                      changed, plus instruments only in one side)
//                     (streams the queries through the SearchService and
//                      prints serving metrics: QPS, p50/p95/p99, pruning;
//                      --shards reloads the per-shard files written by
//                      `build --shards` and serves the scatter-gather
//                      sharded index — answers are identical;
//                      --insert-file additionally streams rows through the
//                      incremental ingest path concurrently with the query
//                      traffic: rows buffer per shard, stay exactly
//                      searchable from the moment they are accepted, and
//                      compact into rebuilt shard trees every
//                      --compact-threshold rows;
//                      --delete-file streams deletes (one global id per
//                      line) after the inserts: deleted rows vanish from
//                      answers immediately and are physically removed at
//                      the next compaction of their shard;
//                      --wal-dir makes every mutation durable in a
//                      write-ahead log (fsync batched every --wal-sync
//                      records) and REPLAYS any log already in the
//                      directory before serving — re-running serve with
//                      the same --wal-dir recovers all previous
//                      inserts/deletes on top of the base collection;
//                      --data-dir=DIR is the fully durable deployment: a
//                      WAL in DIR/wal plus a generation store in
//                      DIR/generations that persists every compacted
//                      generation and truncates the WAL to the tail. The
//                      FIRST run needs --data/--index to bootstrap (the
//                      base generation is persisted immediately); every
//                      later run restarts from the store alone — no
//                      --data/--index required — replaying only the
//                      mutations since the last compaction, and answers
//                      bit-identical to the pre-crash process. Ingest
//                      metrics print alongside the serving metrics;
//                      --stats-file dumps the unified metrics registry
//                      (service + ingest + WAL + persist) there at exit —
//                      and every --stats-interval seconds while serving —
//                      as JSON or Prometheus text exposition;
//                      --trace-sample=N traces every Nth query;
//                      --slow-query-ms traces every query and keeps the
//                      last --slow-log traces that crossed the threshold
//                      (or expired their deadline), printed at exit.)
//
// Data files may be .fvecs (auto-detected by extension), .bvecs, or raw
// float32 (pass --length). Demonstrates the full persistence story:
// generate → save → build → save index → reload → query.

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/io.h"
#include "datagen/datasets.h"
#include "elastic/dtw_scan.h"
#include "index/serialization.h"
#include "index/tree_index.h"
#include "ingest/compactor.h"
#include "net/server.h"
#include "obs/exposition.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "persist/generation_store.h"
#include "quant/rowq.h"
#include "service/search_service.h"
#include "service/snapshot.h"
#include "shard/sharded_index.h"
#include "numeric/numeric_tlb.h"
#include "numeric/registry.h"
#include "sax/sax_scheme.h"
#include "sfa/mcb.h"
#include "subseq/mass.h"
#include "subseq/ucr_subseq.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace sofa;

std::optional<Dataset> LoadDataFile(const std::string& path,
                                    std::size_t raw_length,
                                    const char* flag) {
  if (path.empty()) {
    std::fprintf(stderr, "missing --%s\n", flag);
    return std::nullopt;
  }
  std::optional<Dataset> data;
  if (path.size() > 6 && path.substr(path.size() - 6) == ".bvecs") {
    data = io::ReadBvecs(path);
  } else if (path.size() > 6 && path.substr(path.size() - 6) == ".fvecs") {
    data = io::ReadFvecs(path);
  } else {
    if (raw_length == 0) {
      std::fprintf(stderr, "raw files need --length\n");
      return std::nullopt;
    }
    data = io::ReadRawF32(path, raw_length);
  }
  if (!data.has_value()) {
    std::fprintf(stderr, "failed to read %s\n", path.c_str());
  }
  return data;
}

std::optional<Dataset> LoadData(const Flags& flags, const std::string& flag) {
  return LoadDataFile(flags.GetString(flag, ""),
                      static_cast<std::size_t>(flags.GetInt("length", 0)),
                      flag.c_str());
}

std::string ShardPath(const std::string& index_path, std::size_t s) {
  return index_path + ".shard" + std::to_string(s);
}

// --delete-file format: one decimal global id per line (blank lines and
// lines starting with '#' are skipped). Malformed or out-of-range lines
// fail the whole file with a diagnostic rather than aborting the
// process or silently truncating ids.
bool ReadDeleteIds(const std::string& path,
                   std::vector<std::uint32_t>* ids) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' ||
            line.back() == '\t')) {
      line.pop_back();
    }
    std::size_t at = 0;
    while (at < line.size() && (line[at] == ' ' || line[at] == '\t')) {
      ++at;
    }
    if (at == line.size() || line[at] == '#') {
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long value =
        std::strtoull(line.c_str() + at, &end, 10);
    if (end == line.c_str() + at || *end != '\0' || errno != 0 ||
        value > std::numeric_limits<std::uint32_t>::max()) {
      std::fprintf(stderr, "%s:%zu: not a 32-bit id: '%s'\n", path.c_str(),
                   line_no, line.c_str());
      return false;
    }
    ids->push_back(static_cast<std::uint32_t>(value));
  }
  return true;
}

shard::ShardAssignment ParseAssignment(const Flags& flags) {
  return flags.GetString("assignment", "contiguous") == "hash"
             ? shard::ShardAssignment::kHash
             : shard::ShardAssignment::kContiguous;
}

// Re-creates the build-time partition and reloads one index file per
// shard; build and serve must be run with the same --shards/--assignment.
// num_shards == 1 wraps the plain single-index file as a one-shard
// generation (the ingest path always serves shards).
std::shared_ptr<const shard::ShardedIndex> LoadShardedIndex(
    const Flags& flags, const std::string& index_path, const Dataset& data,
    std::size_t num_shards, bool enable_rowq, ThreadPool* pool) {
  shard::ShardingConfig config;
  config.num_shards = num_shards;
  config.assignment = ParseAssignment(flags);
  config.enable_rowq = enable_rowq;  // compactions keep the tier
  const shard::ShardPartition partition =
      shard::ShardedIndex::Partition(data, num_shards, config.assignment);
  std::vector<shard::Shard> shards(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::string path =
        num_shards > 1 ? ShardPath(index_path, s) : index_path;
    auto loaded = index::LoadIndex(path, partition.data[s].get(), pool);
    if (!loaded.has_value()) {
      std::fprintf(stderr,
                   "failed to load %s (wrong dataset, --shards or "
                   "--assignment?)\n",
                   path.c_str());
      return nullptr;
    }
    if (enable_rowq) {
      loaded->tree->AttachRowQuant(quant::RowQuant::Build(*partition.data[s]));
    }
    shards[s].data = partition.data[s];
    shards[s].scheme = std::move(loaded->scheme);
    shards[s].tree = std::move(loaded->tree);
    shards[s].global_ids = partition.global_ids[s];
  }
  return shard::ShardedIndex::FromShards(std::move(shards), config,
                                         data.length(), pool);
}

int Generate(const Flags& flags, ThreadPool* pool) {
  datagen::GenerateOptions options;
  options.count = static_cast<std::size_t>(flags.GetInt("n_series", 20000));
  options.num_queries =
      static_cast<std::size_t>(flags.GetInt("n_queries", 100));
  options.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 0xda7a));
  const std::string name = flags.GetString("dataset", "SCEDC");
  const std::string out = flags.GetString("out", name + ".fvecs");
  const std::string queries_out =
      flags.GetString("queries_out", name + "_queries.fvecs");
  if (datagen::FindDatasetSpec(name) == nullptr) {
    std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
    return 1;
  }
  const LabeledDataset ds = datagen::MakeDatasetByName(name, options, pool);
  if (!io::WriteFvecs(ds.data, out) ||
      !io::WriteFvecs(ds.queries, queries_out)) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }
  std::printf("wrote %zu series to %s, %zu queries to %s\n", ds.data.size(),
              out.c_str(), ds.queries.size(), queries_out.c_str());
  return 0;
}

int Build(const Flags& flags, ThreadPool* pool) {
  const auto data = LoadData(flags, "data");
  if (!data.has_value()) {
    return 1;
  }
  const std::string index_path = flags.GetString("index", "index.sofa");
  const std::string scheme_kind = flags.GetString("scheme", "sfa");

  std::unique_ptr<quant::SummaryScheme> scheme;
  WallTimer timer;
  if (scheme_kind == "sax") {
    scheme = std::make_unique<sax::SaxScheme>(
        data->length(), static_cast<std::size_t>(flags.GetInt("word", 16)),
        static_cast<std::size_t>(flags.GetInt("alphabet", 256)));
  } else {
    sfa::SfaConfig config;
    config.word_length = static_cast<std::size_t>(flags.GetInt("word", 16));
    config.alphabet =
        static_cast<std::size_t>(flags.GetInt("alphabet", 256));
    config.sampling_ratio = flags.GetDouble("sampling", 0.01);
    scheme = sfa::TrainSfa(*data, config, pool);
  }
  index::IndexConfig config;
  config.leaf_capacity =
      static_cast<std::size_t>(flags.GetInt("leaf_size", 2000));

  const std::size_t num_shards =
      static_cast<std::size_t>(flags.GetInt("shards", 1));
  if (num_shards > 1) {
    shard::ShardingConfig shard_config;
    shard_config.num_shards = num_shards;
    shard_config.assignment = ParseAssignment(flags);
    shard_config.index = config;
    const std::shared_ptr<const quant::SummaryScheme> shared_scheme =
        std::move(scheme);
    const auto sharded =
        shard::ShardedIndex::Build(*data, shard_config, shared_scheme, pool);
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (!index::SaveIndex(*sharded->shard(s).tree, ShardPath(index_path, s))) {
        std::fprintf(stderr, "failed to save shard %zu\n", s);
        return 1;
      }
    }
    std::printf("built %s index over %zu series in %.2f s, sharded %zux "
                "(%s) -> %s.shard0..%zu\n",
                shared_scheme->name().c_str(), data->size(), timer.Seconds(),
                num_shards,
                shard_config.assignment == shard::ShardAssignment::kHash
                    ? "hash"
                    : "contiguous",
                index_path.c_str(), num_shards - 1);
    return 0;
  }

  const index::TreeIndex index(&*data, scheme.get(), config, pool);
  if (!index::SaveIndex(index, index_path)) {
    std::fprintf(stderr, "failed to save index\n");
    return 1;
  }
  const auto stats = index.ComputeStats();
  std::printf("built %s index over %zu series in %.2f s "
              "(%zu subtrees, %zu leaves) -> %s\n",
              scheme->name().c_str(), data->size(), timer.Seconds(),
              stats.num_subtrees, stats.num_leaves, index_path.c_str());
  return 0;
}

int Query(const Flags& flags, ThreadPool* pool) {
  const auto data = LoadData(flags, "data");
  if (!data.has_value()) {
    return 1;
  }
  const auto queries = LoadData(flags, "queries");
  if (!queries.has_value()) {
    return 1;
  }
  auto loaded =
      index::LoadIndex(flags.GetString("index", "index.sofa"), &*data, pool);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "failed to load index (wrong dataset?)\n");
    return 1;
  }
  if (flags.GetBool("rowq", false)) {
    // Answers are bit-identical with the tier on or off; --rowq only
    // changes how many float rows the exact kernel has to touch.
    loaded->tree->AttachRowQuant(quant::RowQuant::Build(*data));
  }
  const std::size_t k = static_cast<std::size_t>(flags.GetInt("k", 1));
  const double epsilon = flags.GetDouble("epsilon", 0.0);
  for (std::size_t q = 0; q < queries->size(); ++q) {
    WallTimer timer;
    const auto result =
        loaded->tree->SearchKnnApproximate(queries->row(q), k, epsilon);
    std::printf("query %zu (%.2f ms):", q, timer.Millis());
    for (const Neighbor& nb : result) {
      std::printf(" %u(%.4f)", nb.id, nb.distance);
    }
    std::printf("\n");
  }
  return 0;
}

int Info(const Flags& flags, ThreadPool* pool) {
  const auto data = LoadData(flags, "data");
  if (!data.has_value()) {
    return 1;
  }
  const auto loaded =
      index::LoadIndex(flags.GetString("index", "index.sofa"), &*data, pool);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "failed to load index\n");
    return 1;
  }
  const auto stats = loaded->tree->ComputeStats();
  std::printf("scheme: %s (l=%zu, alphabet=%zu)\n",
              loaded->scheme->name().c_str(), loaded->scheme->word_length(),
              loaded->scheme->alphabet());
  std::printf("collection: %zu series x %zu\n", data->size(),
              data->length());
  std::printf("tree: %zu subtrees, %zu leaves, %zu inner nodes\n",
              stats.num_subtrees, stats.num_leaves, stats.num_inner);
  std::printf("avg depth %.2f, max depth %zu, avg leaf size %.0f\n",
              stats.avg_depth, stats.max_depth, stats.avg_leaf_size);
  return 0;
}

// Collects the registry and writes it to `path` atomically (tmp +
// rename), in the chosen exposition format. The periodic dump thread and
// the final dump share this.
bool WriteStatsFile(obs::Registry* registry, const std::string& path,
                    const std::string& format) {
  const std::vector<obs::InstrumentSnapshot> snapshot = registry->Collect();
  const std::string body = format == "prometheus"
                               ? obs::RenderPrometheus(snapshot)
                               : obs::RenderJson(snapshot);
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return false;
  }
  bool ok = body.empty() ||
            std::fwrite(body.data(), 1, body.size(), out) == body.size();
  ok = (std::fclose(out) == 0) && ok;
  return ok && std::rename(tmp.c_str(), path.c_str()) == 0;
}

// Loads and parses a stats JSON dump; returns false with a message on
// stderr if the file is unreadable or not a dump.
bool LoadStatsDump(const std::string& path,
                   std::vector<obs::InstrumentSnapshot>* snapshot) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!obs::ParseStatsJson(buffer.str(), snapshot, &error)) {
    std::fprintf(stderr, "%s: not a stats JSON dump (%s)\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

// `sofa_cli stats` — pretty-prints (or re-renders) a JSON stats dump
// written by `serve --stats-file`, or diffs two of them:
//   sofa_cli stats --diff BEFORE.json AFTER.json
int StatsCommand(const Flags& flags) {
  if (flags.Has("diff")) {
    // The greedy space form binds the first file to --diff; the second
    // arrives as a positional argument after the subcommand.
    const std::string before_path = flags.GetString("diff", "");
    const std::string after_path =
        flags.positional().size() > 1 ? flags.positional()[1] : "";
    if (before_path.empty() || after_path.empty()) {
      std::fprintf(stderr, "usage: sofa_cli stats --diff BEFORE.json AFTER.json\n");
      return 1;
    }
    std::vector<obs::InstrumentSnapshot> before;
    std::vector<obs::InstrumentSnapshot> after;
    if (!LoadStatsDump(before_path, &before) ||
        !LoadStatsDump(after_path, &after)) {
      return 1;
    }
    std::fputs(obs::RenderStatsDiff(before, after).c_str(), stdout);
    return 0;
  }
  const std::string path = flags.GetString("stats-file", "");
  if (path.empty()) {
    std::fprintf(stderr, "missing --stats-file\n");
    return 1;
  }
  std::vector<obs::InstrumentSnapshot> snapshot;
  if (!LoadStatsDump(path, &snapshot)) {
    return 1;
  }
  const std::string format = flags.GetString("format", "pretty");
  std::string rendered;
  if (format == "prometheus") {
    rendered = obs::RenderPrometheus(snapshot);
  } else if (format == "json") {
    rendered = obs::RenderJson(snapshot);
  } else {
    rendered = obs::RenderPretty(snapshot);
  }
  std::fputs(rendered.c_str(), stdout);
  return 0;
}

// ---------------------------------------------------------------------------
// `serve` options.
//
// The X-macro below is the single source of truth for every serve flag:
// it declares the ServeOptions fields, drives the one parse pass, and
// generates `sofa_cli serve --help` — a flag cannot exist without
// documentation, and nothing outside ParseServeOptions reads raw flags.
//   X(field, "flag-name", Type, default, "help")
#define SOFA_SERVE_FLAG_LIST(X)                                               \
  X(data, "data", String, "",                                                 \
    "base collection (.fvecs/.bvecs, or raw float32 with --length)")          \
  X(queries, "queries", String, "",                                           \
    "replay mode: query file streamed through the service")                   \
  X(index, "index", String, "index.sofa",                                     \
    "index file (per-shard suffixes with --shards)")                          \
  X(length, "length", Int, 0, "series length for raw float32 files")          \
  X(shards, "shards", Int, 1, "shard count (must match `build --shards`)")    \
  X(assignment, "assignment", String, "contiguous",                           \
    "shard assignment: contiguous|hash")                                      \
  X(rowq, "rowq", Bool, false,                                                \
    "enable the compressed (quantized-row) pruning tier — answers stay "      \
    "bit-identical, fewer float rows reach the exact kernel")                 \
  X(k, "k", Int, 10, "replay mode: neighbors per query")                      \
  X(epsilon, "epsilon", Double, 0.0, "replay mode: approximation slack")      \
  X(deadline_ms, "deadline_ms", Double, 0.0,                                  \
    "replay mode: per-query deadline (0 = none)")                             \
  X(repeat, "repeat", Int, 1, "replay mode: passes over the query file")      \
  X(mode, "mode", String, "auto", "scheduling: auto|latency|throughput")      \
  X(batch, "batch", Int, 64, "max queries per dispatcher batch")              \
  X(max_pending, "max-pending", Int, 4096,                                    \
    "network mode: admission queue bound (beyond it, shed kRejected)")        \
  X(priority_reserve, "priority-reserve", Int, 0,                             \
    "batch slots reserved for batch/background (0 = max_batch/8)")            \
  X(tenant_quota, "tenant-quota", Int, 0,                                     \
    "per-tenant in-flight cap (0 = unlimited)")                               \
  X(insert_file, "insert-file", String, "",                                   \
    "replay mode: rows streamed through the ingest path")                     \
  X(delete_file, "delete-file", String, "",                                   \
    "replay mode: global ids (one per line) deleted after the inserts")       \
  X(compact_threshold, "compact-threshold", Int, 1024,                        \
    "buffered rows per shard before compaction")                              \
  X(wal_dir, "wal-dir", String, "",                                           \
    "write-ahead log directory (replayed on start)")                          \
  X(wal_sync, "wal-sync", Int, 64, "fsync the WAL every N records")           \
  X(data_dir, "data-dir", String, "",                                         \
    "durable root: DIR/wal + DIR/generations")                                \
  X(stats_file, "stats-file", String, "",                                     \
    "dump the metrics registry here at exit")                                 \
  X(stats_interval, "stats-interval", Double, 0.0,                            \
    "re-dump --stats-file every N seconds while serving")                     \
  X(stats_format, "stats-format", String, "json",                             \
    "stats dump format: json|prometheus")                                     \
  X(trace_sample, "trace-sample", Int, 0, "trace every Nth query (0 = off)")  \
  X(slow_query_ms, "slow-query-ms", Double, 0.0,                              \
    "retain traces of queries slower than this (0 = off)")                    \
  X(slow_log, "slow-log", Int, 64, "slow-query ring capacity")                \
  X(listen, "listen", String, "",                                             \
    "network mode: bind HOST:PORT and serve the SOFA wire protocol "          \
    "(docs/PROTOCOL.md) until SIGTERM/SIGINT; port 0 = ephemeral")            \
  X(max_connections, "max-connections", Int, 64,                              \
    "network mode: concurrent connection cap")                                \
  X(port_file, "port-file", String, "",                                       \
    "network mode: write the bound port here once listening")

using ServeString = std::string;
using ServeInt = std::int64_t;
using ServeDouble = double;
using ServeBool = bool;

struct ServeOptions {
#define SOFA_SERVE_DECLARE(field, flag, type, default_value, help) \
  Serve##type field = default_value;
  SOFA_SERVE_FLAG_LIST(SOFA_SERVE_DECLARE)
#undef SOFA_SERVE_DECLARE

  // Derived from --listen during validation.
  std::string listen_host;
  std::uint16_t listen_port = 0;
};

void PrintServeHelp() {
  std::printf(
      "usage: sofa_cli serve [flags]\n"
      "\n"
      "Two modes:\n"
      "  replay  (default)    stream --queries through the SearchService\n"
      "                       and print serving metrics at exit\n"
      "  network (--listen)   bind HOST:PORT and serve the SOFA binary\n"
      "                       wire protocol (docs/PROTOCOL.md) until\n"
      "                       SIGTERM/SIGINT, then drain gracefully:\n"
      "                       refuse new connections, finish in-flight\n"
      "                       requests, dump final stats + slow log\n"
      "\n"
      "flags (default in brackets):\n");
#define SOFA_SERVE_HELP(field, flag, type, default_value, help) \
  std::printf("  --%-18s %s [%s]\n", flag, help, #default_value);
  SOFA_SERVE_FLAG_LIST(SOFA_SERVE_HELP)
#undef SOFA_SERVE_HELP
  std::printf("  --%-18s %s\n", "help", "print this help");
}

bool ParseListenAddress(const std::string& listen, std::string* host,
                        std::uint16_t* port, std::string* error) {
  const std::size_t colon = listen.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == listen.size()) {
    *error = "--listen needs HOST:PORT, got '" + listen + "'";
    return false;
  }
  *host = listen.substr(0, colon);
  errno = 0;
  char* end = nullptr;
  const unsigned long value =
      std::strtoul(listen.c_str() + colon + 1, &end, 10);
  if (end == listen.c_str() + colon + 1 || *end != '\0' || errno != 0 ||
      value > 65535) {
    *error = "--listen port must be 0..65535, got '" +
             listen.substr(colon + 1) + "'";
    return false;
  }
  *port = static_cast<std::uint16_t>(value);
  return true;
}

bool ParseServeOptions(const Flags& flags, ServeOptions* opts,
                       std::string* error) {
#define SOFA_SERVE_PARSE(field, flag, type, default_value, help) \
  opts->field = flags.Get##type(flag, opts->field);
  SOFA_SERVE_FLAG_LIST(SOFA_SERVE_PARSE)
#undef SOFA_SERVE_PARSE

  const auto at_least = [error](const char* flag, std::int64_t value,
                                std::int64_t min) {
    if (value < min) {
      *error = std::string("--") + flag + " must be >= " +
               std::to_string(min) + ", got " + std::to_string(value);
      return false;
    }
    return true;
  };
  const auto non_negative = [error](const char* flag, double value) {
    if (value < 0.0) {
      *error = std::string("--") + flag + " must not be negative";
      return false;
    }
    return true;
  };
  if (!at_least("k", opts->k, 1) || !at_least("batch", opts->batch, 1) ||
      !at_least("repeat", opts->repeat, 1) ||
      !at_least("shards", opts->shards, 1) ||
      !at_least("compact-threshold", opts->compact_threshold, 1) ||
      !at_least("wal-sync", opts->wal_sync, 1) ||
      !at_least("slow-log", opts->slow_log, 1) ||
      !at_least("max-pending", opts->max_pending, 1) ||
      !at_least("max-connections", opts->max_connections, 1) ||
      !at_least("length", opts->length, 0) ||
      !at_least("trace-sample", opts->trace_sample, 0) ||
      !at_least("priority-reserve", opts->priority_reserve, 0) ||
      !at_least("tenant-quota", opts->tenant_quota, 0)) {
    return false;
  }
  if (!non_negative("epsilon", opts->epsilon) ||
      !non_negative("deadline_ms", opts->deadline_ms) ||
      !non_negative("stats-interval", opts->stats_interval) ||
      !non_negative("slow-query-ms", opts->slow_query_ms)) {
    return false;
  }
  if (opts->mode != "auto" && opts->mode != "latency" &&
      opts->mode != "throughput") {
    *error = "--mode must be auto|latency|throughput, got '" + opts->mode +
             "'";
    return false;
  }
  if (opts->assignment != "contiguous" && opts->assignment != "hash") {
    *error = "--assignment must be contiguous|hash, got '" +
             opts->assignment + "'";
    return false;
  }
  if (opts->stats_format != "json" && opts->stats_format != "prometheus") {
    *error = "--stats-format must be json|prometheus, got '" +
             opts->stats_format + "'";
    return false;
  }
  if (opts->stats_interval > 0.0 && opts->stats_file.empty()) {
    *error = "--stats-interval needs --stats-file";
    return false;
  }
  if (!opts->listen.empty()) {
    if (!ParseListenAddress(opts->listen, &opts->listen_host,
                            &opts->listen_port, error)) {
      return false;
    }
    // In network mode queries and mutations arrive over the wire.
    const char* conflict = nullptr;
    if (!opts->queries.empty()) {
      conflict = "queries";
    } else if (!opts->insert_file.empty()) {
      conflict = "insert-file";
    } else if (!opts->delete_file.empty()) {
      conflict = "delete-file";
    } else if (opts->repeat != 1) {
      conflict = "repeat";
    }
    if (conflict != nullptr) {
      *error = std::string("replay-only flag --") + conflict +
               " conflicts with --listen (queries and mutations arrive "
               "over the wire)";
      return false;
    }
  } else {
    if (opts->queries.empty()) {
      *error =
          "replay mode needs --queries (or pass --listen=HOST:PORT for "
          "network mode)";
      return false;
    }
    if (!opts->port_file.empty()) {
      *error = "--port-file only applies with --listen";
      return false;
    }
  }
  return true;
}

// SIGTERM/SIGINT → graceful drain. The handler only pokes a self-pipe
// (async-signal-safe); the serving thread blocks on the read end.
std::atomic<int> g_shutdown_signal{0};
int g_signal_pipe[2] = {-1, -1};

void OnShutdownSignal(int sig) {
  g_shutdown_signal.store(sig);
  const char byte = 1;
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

// Atomic tmp + rename, so a smoke harness polling for the file never
// reads a torn port number.
bool WritePortFile(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return false;
  }
  bool ok = std::fprintf(out, "%u\n", port) > 0;
  ok = (std::fclose(out) == 0) && ok;
  return ok && std::rename(tmp.c_str(), path.c_str()) == 0;
}

// Streams the query file through a SearchService and reports serving
// metrics (replay mode), or serves the binary wire protocol on a TCP
// socket until SIGTERM (network mode, --listen).
int Serve(const Flags& flags, ThreadPool* pool) {
  if (flags.GetBool("help", false)) {
    PrintServeHelp();
    return 0;
  }
  ServeOptions opts;
  std::string parse_error;
  if (!ParseServeOptions(flags, &opts, &parse_error)) {
    std::fprintf(stderr,
                 "serve: %s\n(`sofa_cli serve --help` lists every flag)\n",
                 parse_error.c_str());
    return 1;
  }
  const bool network = !opts.listen.empty();
  // One registry for every layer: the service, the ingest path, the WAL
  // and the generation store all register their instruments here, so one
  // Collect() (stats dump, `sofa_cli stats`) covers the whole process.
  obs::Registry registry;
  // --data-dir: the durable deployment root. A generation already in its
  // store supersedes --data/--index — the serving state restarts from
  // (newest intact generation + WAL tail) alone.
  const std::string data_dir = opts.data_dir;
  std::string wal_dir = opts.wal_dir;
  std::unique_ptr<persist::GenerationStore> store;
  std::optional<persist::LoadedGeneration> restored;
  if (!data_dir.empty()) {
    if (wal_dir.empty()) {
      wal_dir = data_dir + "/wal";
    }
    store = persist::GenerationStore::Open(data_dir + "/generations",
                                           &registry);
    if (store == nullptr) {
      std::fprintf(stderr, "cannot open --data-dir %s\n", data_dir.c_str());
      return 1;
    }
    restored = store->LoadLatest(pool, opts.rowq);
  }
  std::optional<Dataset> data;
  if (!restored.has_value()) {
    data = LoadDataFile(opts.data, static_cast<std::size_t>(opts.length),
                        "data");
    if (!data.has_value()) {
      return 1;
    }
  }
  std::optional<Dataset> queries;  // replay mode only
  if (!network) {
    queries = LoadDataFile(opts.queries,
                           static_cast<std::size_t>(opts.length), "queries");
    if (!queries.has_value()) {
      return 1;
    }
  }
  const std::string index_path = opts.index;
  const std::string insert_path = opts.insert_file;
  const std::string delete_path = opts.delete_file;
  const std::size_t series_length =
      restored.has_value() ? restored->sharded->length() : data->length();
  std::optional<Dataset> insert_rows;
  if (!insert_path.empty()) {
    insert_rows = LoadDataFile(insert_path,
                               static_cast<std::size_t>(opts.length),
                               "insert-file");
    if (!insert_rows.has_value()) {
      return 1;
    }
    if (insert_rows->length() != series_length) {
      std::fprintf(stderr, "--insert-file rows have length %zu, need %zu\n",
                   insert_rows->length(), series_length);
      return 1;
    }
  }
  std::vector<std::uint32_t> delete_ids;
  if (!delete_path.empty()) {
    if (!ReadDeleteIds(delete_path, &delete_ids)) {
      std::fprintf(stderr, "failed to read --delete-file %s\n",
                   delete_path.c_str());
      return 1;
    }
  }
  // Any mutation source — inserts, deletes, a WAL to recover, or a
  // generation store — runs through the ingest path, which always serves
  // a (possibly one-shard) sharded generation: that is the unit of
  // per-shard compaction and persistence.
  // A network server is always mutable when it can be (INSERT/DELETE
  // arrive over the wire), so --listen runs through the ingest path even
  // with no file-based mutation source.
  const bool ingesting = network || insert_rows.has_value() ||
                         !delete_ids.empty() || !wal_dir.empty() ||
                         store != nullptr;
  std::optional<index::LoadedIndex> loaded;  // single-index keep-alive
  std::shared_ptr<const shard::ShardedIndex> sharded;
  std::shared_ptr<const service::IndexSnapshot> snapshot;
  std::size_t num_shards = static_cast<std::size_t>(opts.shards);
  if (restored.has_value()) {
    sharded = restored->sharded;
    num_shards = sharded->num_shards();
    snapshot = service::WrapShardedIndex(sharded);
    std::printf("restored generation %llu from %s: %zu series x %zu, "
                "%zu shards, %zu tombstones\n",
                static_cast<unsigned long long>(
                    restored->manifest.generation_seq),
                data_dir.c_str(), sharded->size(), sharded->length(),
                num_shards, restored->manifest.tombstones.size());
  } else if (num_shards > 1 || ingesting) {
    sharded =
        LoadShardedIndex(flags, index_path, *data, num_shards, opts.rowq, pool);
    if (sharded == nullptr) {
      return 1;
    }
    snapshot = service::WrapShardedIndex(sharded);
  } else {
    loaded = index::LoadIndex(index_path, &*data, pool);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "failed to load index (wrong dataset?)\n");
      return 1;
    }
    if (opts.rowq) {
      loaded->tree->AttachRowQuant(quant::RowQuant::Build(*data));
    }
    snapshot = service::WrapIndex(loaded->tree.get());
  }
  const std::size_t k = static_cast<std::size_t>(opts.k);
  const double epsilon = opts.epsilon;
  const double deadline_ms = opts.deadline_ms;
  const std::size_t repeat = static_cast<std::size_t>(opts.repeat);
  const std::string mode = opts.mode;

  service::ServiceConfig config;
  config.max_batch = static_cast<std::size_t>(opts.batch);
  // Replay admission never sheds (the whole file is the workload); the
  // network bound is a real backpressure knob.
  config.max_pending = network ? static_cast<std::size_t>(opts.max_pending)
                               : queries->size() * repeat + 1;
  config.priority_reserve = static_cast<std::size_t>(opts.priority_reserve);
  config.tenant_max_in_flight = static_cast<std::size_t>(opts.tenant_quota);
  if (mode == "latency") {
    config.latency_mode_threshold = config.max_batch;  // never cross-query
  } else if (mode == "throughput") {
    config.latency_mode_threshold = 0;  // always cross-query
  }
  config.registry = &registry;
  config.trace.sample_every = static_cast<std::uint32_t>(opts.trace_sample);
  config.trace.slow_query_ms = opts.slow_query_ms;
  config.trace.slow_log_capacity = static_cast<std::size_t>(opts.slow_log);
  service::SearchService svc(std::move(snapshot), pool, config);

  // With any mutation source, attach the incremental ingest path and
  // stream the mutations from a side thread while the query traffic
  // runs: rows are exactly searchable the moment Insert() accepts them,
  // deletes vanish the moment Delete() returns, and shards whose buffers
  // cross the threshold compact and republish under the traffic. With
  // --wal-dir every mutation is logged before it becomes visible, and
  // any log already present is replayed first — recover-on-start.
  std::optional<ingest::Compactor> compactor;
  if (ingesting) {
    ingest::IngestConfig ingest_config;
    ingest_config.compact_threshold =
        static_cast<std::size_t>(opts.compact_threshold);
    ingest_config.wal_dir = wal_dir;
    ingest_config.wal.sync_every = static_cast<std::size_t>(opts.wal_sync);
    ingest_config.store = store.get();
    ingest_config.registry = &registry;
    if (restored.has_value()) {
      const ingest::RecoveredBase recovered_base =
          ingest::MakeRecoveredBase(*restored);
      compactor.emplace(&svc, sharded, ingest_config, &recovered_base);
    } else {
      compactor.emplace(&svc, sharded, ingest_config);
    }
    if (!wal_dir.empty()) {
      const ingest::RecoverStats recovered = compactor->Recover();
      if (!recovered.ok) {
        std::fprintf(stderr,
                     recovered.sequence_gap
                         ? "WAL in %s has lost interior records "
                           "(sequence gap) — refusing to serve "
                           "(replayed what fit: %llu inserts, %llu "
                           "deletes)\n"
                         : "WAL in %s does not match the base collection "
                           "(replayed what fit: %llu inserts, %llu "
                           "deletes)\n",
                     wal_dir.c_str(),
                     static_cast<unsigned long long>(
                         recovered.inserts_applied),
                     static_cast<unsigned long long>(
                         recovered.deletes_applied));
        return 1;
      }
      std::printf("recovered from WAL %s: %llu inserts, %llu deletes "
                  "replayed (%llu already in base)\n",
                  wal_dir.c_str(),
                  static_cast<unsigned long long>(recovered.inserts_applied),
                  static_cast<unsigned long long>(recovered.deletes_applied),
                  static_cast<unsigned long long>(
                      recovered.inserts_skipped + recovered.records_skipped));
      if (recovered.tail_truncated) {
        std::fprintf(stderr,
                     "WARNING: WAL replay hit a torn/corrupt record at a "
                     "segment tail — the crashed-writer pattern (the "
                     "record seqno chain is intact, so no interior loss; "
                     "see docs/FILE_FORMATS.md, replay semantics).\n");
      }
    }
    if (store != nullptr && !restored.has_value()) {
      // Bootstrap: make the base generation itself durable so the next
      // run restarts from the store alone.
      if (compactor->PersistNow().ok()) {
        std::printf("persisted base generation to %s/generations\n",
                    data_dir.c_str());
      } else {
        std::fprintf(stderr,
                     "WARNING: could not persist the base generation "
                     "(serving continues; restart cost stays O(WAL))\n");
      }
    }
  }
  std::thread mutator;
  if (insert_rows.has_value() || !delete_ids.empty()) {
    mutator = std::thread([&] {
      if (insert_rows.has_value()) {
        for (std::size_t r = 0; r < insert_rows->size(); ++r) {
          while (compactor->Insert(insert_rows->row(r),
                                   insert_rows->length()) ==
                 StatusCode::kRejected) {
            // Admission backpressure: compaction is behind, yield briefly.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      }
      for (const std::uint32_t id : delete_ids) {
        const Status status = compactor->Delete(id);
        if (status != StatusCode::kOk &&
            status != StatusCode::kAlreadyDeleted) {
          std::fprintf(stderr, "delete of id %u failed (%s)\n", id,
                       status.ToString().c_str());
        }
      }
    });
  }

  // Periodic stats dump: a background thread re-renders the registry to
  // --stats-file every --stats-interval seconds (atomic tmp + rename, so
  // a reader never sees a torn file); the final state is dumped at exit
  // regardless of the interval.
  const std::string stats_file = opts.stats_file;
  const double stats_interval = opts.stats_interval;
  const std::string stats_format = opts.stats_format;
  std::mutex stats_mutex;
  std::condition_variable stats_cv;
  bool stats_stop = false;
  std::thread stats_thread;
  if (!stats_file.empty() && stats_interval > 0.0) {
    stats_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(stats_mutex);
      while (!stats_cv.wait_for(
          lock, std::chrono::duration<double>(stats_interval),
          [&] { return stats_stop; })) {
        lock.unlock();
        WriteStatsFile(&registry, stats_file, stats_format);
        lock.lock();
      }
    });
  }

  WallTimer timer;
  std::vector<std::future<service::SearchResponse>> futures;
  std::optional<net::ServerStats> net_stats;
  if (network) {
    // Network mode: serve the wire protocol until SIGTERM/SIGINT, then
    // drain — refuse new connections, let in-flight requests finish and
    // their responses flush, and fall through to the shared report.
    net::ServerConfig server_config;
    server_config.host = opts.listen_host;
    server_config.port = opts.listen_port;
    server_config.max_connections =
        static_cast<std::size_t>(opts.max_connections);
    net::SofaServer server(&svc,
                           compactor.has_value() ? &*compactor : nullptr,
                           server_config);
    const Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "cannot listen on %s: %s\n", opts.listen.c_str(),
                   started.ToString().c_str());
      return 1;
    }
    std::printf("listening on %s:%u (mode=%s, batch<=%zu, shards=%zu, "
                "max_pending=%zu, %s)\n",
                opts.listen_host.c_str(), server.port(), mode.c_str(),
                config.max_batch, num_shards, config.max_pending,
                compactor.has_value() ? "mutable" : "read-only");
    std::fflush(stdout);
    if (!opts.port_file.empty() &&
        !WritePortFile(opts.port_file, server.port())) {
      std::fprintf(stderr, "failed to write --port-file %s\n",
                   opts.port_file.c_str());
      return 1;
    }
    if (::pipe(g_signal_pipe) != 0) {
      std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
      return 1;
    }
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = OnShutdownSignal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    const int signal_number = g_shutdown_signal.load();
    std::printf("received %s — draining: new connections refused, "
                "in-flight requests finish\n",
                signal_number == SIGINT ? "SIGINT" : "SIGTERM");
    server.Shutdown();  // drain + flush responses + join every connection
    std::printf("drain complete\n");
    net_stats = server.Stats();
    action.sa_handler = SIG_DFL;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    ::close(g_signal_pipe[0]);
    ::close(g_signal_pipe[1]);
    g_signal_pipe[0] = g_signal_pipe[1] = -1;
  } else {
    // Replay mode: stream the query file through the service.
    futures.reserve(queries->size() * repeat);
    for (std::size_t r = 0; r < repeat; ++r) {
      for (std::size_t q = 0; q < queries->size(); ++q) {
        service::SearchRequest request;
        request.query.assign(queries->row(q),
                             queries->row(q) + queries->length());
        request.k = k;
        request.epsilon = epsilon;
        request.collect_profile = true;
        if (deadline_ms > 0.0) {
          request.SetDeadlineMs(deadline_ms);
        }
        futures.push_back(svc.Submit(std::move(request)));
      }
    }
    for (auto& future : futures) {
      (void)future.get();
    }
  }
  if (mutator.joinable()) {
    mutator.join();
    compactor->Flush();  // drain the buffers into the trees
  }
  const double wall_seconds = timer.Seconds();

  const service::MetricsSnapshot metrics = svc.Metrics();
  if (network) {
    std::printf("served %llu requests over %.2f s (mode=%s, batch<=%zu, "
                "shards=%zu)\n",
                static_cast<unsigned long long>(
                    metrics.completed + metrics.rejected + metrics.expired +
                    metrics.invalid + metrics.quota_rejected),
                wall_seconds, mode.c_str(), config.max_batch, num_shards);
    std::printf("  net: %llu connections accepted (%llu rejected), "
                "%llu frames in, %llu out, %llu protocol errors\n",
                static_cast<unsigned long long>(
                    net_stats->connections_accepted),
                static_cast<unsigned long long>(
                    net_stats->connections_rejected),
                static_cast<unsigned long long>(net_stats->frames_received),
                static_cast<unsigned long long>(net_stats->frames_sent),
                static_cast<unsigned long long>(net_stats->protocol_errors));
  } else {
    std::printf("served %zu requests in %.2f s (mode=%s, batch<=%zu, "
                "shards=%zu)\n",
                futures.size(), wall_seconds, mode.c_str(), config.max_batch,
                num_shards);
  }
  std::printf("  ok %llu  rejected %llu  expired %llu  invalid %llu  "
              "quota-shed %llu\n",
              static_cast<unsigned long long>(metrics.completed),
              static_cast<unsigned long long>(metrics.rejected),
              static_cast<unsigned long long>(metrics.expired),
              static_cast<unsigned long long>(metrics.invalid),
              static_cast<unsigned long long>(metrics.quota_rejected));
  std::printf("  by priority: interactive %llu  batch %llu  "
              "background %llu\n",
              static_cast<unsigned long long>(
                  metrics.completed_by_priority[0]),
              static_cast<unsigned long long>(
                  metrics.completed_by_priority[1]),
              static_cast<unsigned long long>(
                  metrics.completed_by_priority[2]));
  std::printf("  QPS %.1f\n",
              static_cast<double>(metrics.completed) / wall_seconds);
  std::printf("  latency ms: mean %.3f  p50 %.3f  p95 %.3f  p99 %.3f  "
              "max %.3f\n",
              metrics.latency_mean_ms, metrics.latency_p50_ms,
              metrics.latency_p95_ms, metrics.latency_p99_ms,
              metrics.latency_max_ms);
  std::printf("  scheduling: %llu latency-mode queries, %llu "
              "throughput batches (%llu queries)\n",
              static_cast<unsigned long long>(metrics.latency_queries),
              static_cast<unsigned long long>(metrics.throughput_batches),
              static_cast<unsigned long long>(metrics.throughput_queries));
  std::printf("  pruning: %.1f%% of series cut by LBD before raw data "
              "(%llu LBD checks, %llu real distances, %llu candidates "
              "filtered post-scan)\n",
              100.0 * metrics.profile.SeriesPruningRatio(),
              static_cast<unsigned long long>(
                  metrics.profile.series_lbd_checked),
              static_cast<unsigned long long>(
                  metrics.profile.series_ed_computed),
              static_cast<unsigned long long>(
                  metrics.profile.candidates_filtered));
  if (compactor.has_value()) {
    const ingest::IngestMetrics ingest_metrics = compactor->Metrics();
    std::printf("  ingest: %llu inserted (%llu rejected), %llu deleted, "
                "%llu compactions, %zu still buffered, %zu tombstones "
                "pending purge, id space now %zu series\n",
                static_cast<unsigned long long>(ingest_metrics.inserted),
                static_cast<unsigned long long>(ingest_metrics.rejected),
                static_cast<unsigned long long>(ingest_metrics.deleted),
                static_cast<unsigned long long>(ingest_metrics.compactions),
                ingest_metrics.pending, ingest_metrics.tombstones,
                ingest_metrics.total_rows);
    if (store != nullptr) {
      std::printf("  persist: %llu generations committed (%llu failures) "
                  "-> %s/generations\n",
                  static_cast<unsigned long long>(ingest_metrics.persisted),
                  static_cast<unsigned long long>(
                      ingest_metrics.persist_failures),
                  data_dir.c_str());
    }
  }

  // Slow-query dump: every retained trace, oldest first.
  if (config.trace.slow_query_ms > 0.0) {
    const obs::SlowQueryLog& slow_log = svc.slow_query_log();
    const std::vector<obs::TraceRecord> slow = slow_log.Dump();
    std::printf("  slow queries over %.2f ms: %llu total, %zu retained "
                "(%llu evicted from the %zu-entry ring)\n",
                config.trace.slow_query_ms,
                static_cast<unsigned long long>(slow_log.TotalPushed()),
                slow.size(),
                static_cast<unsigned long long>(slow_log.TotalEvicted()),
                slow_log.capacity());
    for (const obs::TraceRecord& record : slow) {
      std::fputs(obs::FormatTrace(record).c_str(), stdout);
    }
  }

  // Final stats dump — after the ingest Flush and every printout above,
  // so the file covers the complete run.
  if (stats_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats_stop = true;
    }
    stats_cv.notify_all();
    stats_thread.join();
  }
  if (!stats_file.empty()) {
    if (WriteStatsFile(&registry, stats_file, stats_format)) {
      std::printf("  stats: wrote %s (%s)\n", stats_file.c_str(),
                  stats_format.c_str());
    } else {
      std::fprintf(stderr, "failed to write --stats-file %s\n",
                   stats_file.c_str());
      return 1;
    }
  }
  return 0;
}

// Exact k-NN under banded DTW over the whole collection (assumes the
// files hold z-normalized series, as written by `generate`).
int DtwScanCommand(const Flags& flags, ThreadPool* pool) {
  const auto data = LoadData(flags, "data");
  if (!data.has_value()) {
    return 1;
  }
  const auto queries = LoadData(flags, "queries");
  if (!queries.has_value()) {
    return 1;
  }
  elastic::DtwScan::Options options;
  options.band = static_cast<std::size_t>(
      flags.GetInt("band", static_cast<std::int64_t>(data->length() / 10)));
  const std::size_t k = static_cast<std::size_t>(flags.GetInt("k", 1));
  const elastic::DtwScan scanner(&*data, pool, options);
  for (std::size_t q = 0; q < queries->size(); ++q) {
    elastic::DtwScanProfile profile;
    WallTimer timer;
    const auto result = scanner.SearchKnn(queries->row(q), k, &profile);
    std::printf("query %zu (%.2f ms, band %zu):", q, timer.Millis(),
                options.band);
    for (const Neighbor& nb : result) {
      std::printf(" %u(%.4f)", nb.id, nb.distance);
    }
    const double pruned =
        100.0 *
        static_cast<double>(profile.pruned_kim + profile.pruned_keogh_qc +
                            profile.pruned_keogh_cq) /
        static_cast<double>(profile.candidates);
    std::printf("  [%.0f%% pruned before DTW]\n", pruned);
  }
  return 0;
}

// Best occurrences of a pattern inside a long stream (row 0 of --data is
// the stream, row 0 of --queries the pattern).
int SubseqCommand(const Flags& flags, ThreadPool*) {
  const auto data = LoadData(flags, "data");
  if (!data.has_value() || data->empty()) {
    return 1;
  }
  const auto queries = LoadData(flags, "queries");
  if (!queries.has_value() || queries->empty()) {
    return 1;
  }
  const std::size_t n = data->length();
  const std::size_t m = queries->length();
  if (m > n) {
    std::fprintf(stderr, "pattern (%zu) longer than stream (%zu)\n", m, n);
    return 1;
  }
  const std::size_t k = static_cast<std::size_t>(flags.GetInt("k", 5));

  subseq::MassPlan plan(n, m);
  WallTimer timer;
  const auto matches = plan.TopK(data->row(0), queries->row(0), k);
  std::printf("MASS top-%zu over %zu windows (%.1f ms):\n", k,
              plan.profile_length(), timer.Millis());
  for (const auto& match : matches) {
    std::printf("  offset %8zu  z-ED %.4f\n", match.position,
                match.distance);
  }

  timer.Reset();
  subseq::UcrSubseqProfile profile;
  const subseq::SubseqMatch best =
      subseq::FindBestMatch(data->row(0), n, queries->row(0), m, &profile);
  std::printf("scan best match (%.1f ms): offset %zu, z-ED %.4f\n",
              timer.Millis(), best.position, best.distance);
  return 0;
}

// TLB of one summarization method on a (data, queries) pair — the
// Section V-E / Section III metric from the command line.
int TlbCommand(const Flags& flags, ThreadPool* pool) {
  const auto data = LoadData(flags, "data");
  if (!data.has_value()) {
    return 1;
  }
  const auto queries = LoadData(flags, "queries");
  if (!queries.has_value()) {
    return 1;
  }
  const std::string method = flags.GetString("method", "DFT");
  const std::size_t word =
      static_cast<std::size_t>(flags.GetInt("word", 16));
  if (method == "SFA" || method == "sfa") {
    sfa::SfaConfig config;
    config.word_length = word;
    config.alphabet =
        static_cast<std::size_t>(flags.GetInt("alphabet", 256));
    const auto scheme = sfa::TrainSfa(*data, config, pool);
    std::printf("%s TLB %.4f  pruning power %.4f\n",
                scheme->name().c_str(),
                sfa::MeanTlb(*scheme, *data, *queries),
                sfa::MeanPruningPower(*scheme, *data, *queries));
    return 0;
  }
  const auto summary =
      numeric::MakeNumericSummary(method, data->length(), word);
  std::printf("%s TLB %.4f  pruning power %.4f\n", summary->name().c_str(),
              numeric::MeanTlb(*summary, *data, *queries),
              numeric::MeanPruningPower(*summary, *data, *queries));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  ThreadPool pool(static_cast<std::size_t>(
      flags.GetInt("threads", static_cast<std::int64_t>(HardwareThreads()))));
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: sofa_cli "
                 "generate|build|query|serve|stats|info|dtw-scan|subseq|tlb "
                 "[flags]\n");
    return 1;
  }
  const std::string command = flags.positional()[0];
  if (command == "generate") {
    return Generate(flags, &pool);
  }
  if (command == "build") {
    return Build(flags, &pool);
  }
  if (command == "query") {
    return Query(flags, &pool);
  }
  if (command == "serve") {
    return Serve(flags, &pool);
  }
  if (command == "stats") {
    return StatsCommand(flags);
  }
  if (command == "info") {
    return Info(flags, &pool);
  }
  if (command == "dtw-scan") {
    return DtwScanCommand(flags, &pool);
  }
  if (command == "subseq") {
    return SubseqCommand(flags, &pool);
  }
  if (command == "tlb") {
    return TlbCommand(flags, &pool);
  }
  std::fprintf(stderr, "unknown command %s\n", command.c_str());
  return 1;
}
