// Exact vector search — SOFA on unordered vector data (SIFT-like), head to
// head with the FAISS-style flat index.
//
//   ./examples/vector_search [--n_series=30000] [--batch=8]
//
// Vector datasets have no ordering, so their "series" carry variance in
// high frequencies; classic SAX indexes degrade there, while SOFA keeps an
// edge even against a brute-force flat scan (paper: 3-4x faster than
// FAISS). This example runs single queries on SOFA and a core-sized
// mini-batch on the flat index, the paper's FAISS protocol.

#include <cstdio>

#include "datagen/datasets.h"
#include "flat/index_flat_l2.h"
#include "index/tree_index.h"
#include "sfa/mcb.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  Flags flags(argc, argv);
  const std::size_t n_series =
      static_cast<std::size_t>(flags.GetInt("n_series", 30000));
  const std::size_t threads = static_cast<std::size_t>(
      flags.GetInt("threads", static_cast<std::int64_t>(HardwareThreads())));
  const std::size_t batch =
      static_cast<std::size_t>(flags.GetInt("batch", threads));
  ThreadPool pool(threads);

  datagen::GenerateOptions gen;
  gen.count = n_series;
  gen.num_queries = std::max<std::size_t>(batch, 16);
  const LabeledDataset dataset =
      datagen::MakeDatasetByName("SIFT1b", gen, &pool);
  std::printf("vector collection: %s (%zu vectors × %zu dims)\n",
              dataset.name.c_str(), dataset.data.size(),
              dataset.data.length());

  sfa::SfaConfig sfa_config;
  const auto scheme = sfa::TrainSfa(dataset.data, sfa_config, &pool);
  index::IndexConfig config;
  config.leaf_capacity = 2000;
  WallTimer build_timer;
  const index::TreeIndex sofa_index(&dataset.data, scheme.get(), config,
                                    &pool);
  const double sofa_build_s = build_timer.Seconds();
  build_timer.Reset();
  const flat::IndexFlatL2 flat_index(&dataset.data, &pool);
  std::printf("build: SOFA %.3f s, FlatL2 %.3f s\n", sofa_build_s,
              build_timer.Seconds());

  // SOFA: sequential queries, each internally parallel.
  std::vector<double> sofa_ms;
  for (std::size_t q = 0; q < dataset.queries.size(); ++q) {
    WallTimer timer;
    (void)sofa_index.SearchKnn(dataset.queries.row(q), 10);
    sofa_ms.push_back(timer.Millis());
  }

  // FlatL2: mini-batches of #threads queries (the paper's FAISS setup).
  std::vector<double> flat_ms;
  {
    Dataset batch_queries(dataset.queries.length());
    std::size_t q = 0;
    while (q < dataset.queries.size()) {
      batch_queries.Resize(0);
      const std::size_t end = std::min(dataset.queries.size(), q + batch);
      for (; q < end; ++q) {
        batch_queries.Append(dataset.queries.row(q));
      }
      WallTimer timer;
      (void)flat_index.SearchBatch(batch_queries, 10);
      const double per_query = timer.Millis() /
                               static_cast<double>(batch_queries.size());
      for (std::size_t i = 0; i < batch_queries.size(); ++i) {
        flat_ms.push_back(per_query);
      }
    }
  }

  std::printf("10-NN median latency: SOFA %.2f ms, FlatL2 %.2f ms/query\n",
              stats::Median(sofa_ms), stats::Median(flat_ms));

  // Cross-check exactness on the first query.
  const auto a = sofa_index.SearchKnn(dataset.queries.row(0), 10);
  const auto b = flat_index.SearchKnn(dataset.queries.row(0), 10);
  bool exact = a.size() == b.size();
  for (std::size_t i = 0; exact && i < a.size(); ++i) {
    exact = std::abs(a[i].distance - b[i].distance) < 1e-3f;
  }
  std::printf("exactness vs flat index: %s\n", exact ? "✓" : "✗ MISMATCH");
  return 0;
}
