// ε-approximate similarity search with SOFA — the paper's Section VI
// future-work direction, exercised end to end.
//
//   ./examples/approximate_search [--n_series=50000] [--threads=N]
//
// The GEMINI engine stays exact because it only prunes candidates whose
// lower bound exceeds the best-so-far. Inflating the lower bound by
// (1+ε) prunes more aggressively; every pruned candidate then satisfies
// d ≥ BSF/(1+ε), so the answer is guaranteed within (1+ε)× of the exact
// distance — the classic contract of approximate search. This example
// sweeps ε on a high-frequency collection and reports the three numbers
// that matter: speed, how approximate the answers actually are (measured,
// not the guarantee), and how often they are simply exact.
//
// The cheapest setting of all skips the tree walk entirely and reports
// the best series of the query's own leaf ("leaf-only"), the quality the
// paper's Approximate Search phase reaches before any refinement.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "datagen/datasets.h"
#include "index/query_engine.h"
#include "index/tree_index.h"
#include "scan/ucr_scan.h"
#include "sfa/mcb.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  Flags flags(argc, argv);
  const std::size_t n_series =
      static_cast<std::size_t>(flags.GetInt("n_series", 50000));
  const std::size_t threads = static_cast<std::size_t>(
      flags.GetInt("threads", static_cast<std::int64_t>(HardwareThreads())));
  ThreadPool pool(threads);

  // A high-frequency collection — where SOFA's pruning margin, and thus
  // the room ε can exploit, is largest.
  datagen::GenerateOptions gen;
  gen.count = n_series;
  gen.num_queries = 20;
  const LabeledDataset dataset =
      datagen::MakeDatasetByName("LenDB", gen, &pool);
  std::printf("dataset: %s, %zu series of length %zu, %zu queries\n",
              dataset.name.c_str(), dataset.data.size(),
              dataset.data.length(), dataset.queries.size());

  sfa::SfaConfig sfa_config;
  const auto scheme = sfa::TrainSfa(dataset.data, sfa_config, &pool);
  index::IndexConfig index_config;
  index_config.leaf_capacity = 2000;
  const index::TreeIndex tree(&dataset.data, scheme.get(), index_config,
                              &pool);
  const index::QueryEngine engine(&tree);

  // Exact 1-NN distances (the reference for measured quality).
  const scan::UcrScan scanner(&dataset.data, &pool);
  std::vector<float> exact_distance(dataset.queries.size());
  for (std::size_t q = 0; q < dataset.queries.size(); ++q) {
    exact_distance[q] = scanner.Search1Nn(dataset.queries.row(q)).distance;
  }

  std::printf("\n%8s %12s %14s %12s %10s\n", "epsilon", "median ms",
              "mean ED calls", "worst ratio", "recall@1");
  for (const double epsilon : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    std::vector<double> times_ms;
    double ed_calls = 0.0;
    double worst_ratio = 1.0;
    std::size_t hits = 0;
    for (std::size_t q = 0; q < dataset.queries.size(); ++q) {
      index::QueryProfile profile;
      WallTimer timer;
      const auto answer =
          engine.Search(dataset.queries.row(q), 1, epsilon, &profile);
      times_ms.push_back(timer.Millis());
      ed_calls += static_cast<double>(profile.series_ed_computed);
      const double ratio =
          exact_distance[q] > 0.0f
              ? static_cast<double>(answer[0].distance) / exact_distance[q]
              : 1.0;
      worst_ratio = std::max(worst_ratio, ratio);
      hits += answer[0].distance <= exact_distance[q] * (1.0f + 1e-5f);
    }
    std::printf("%8.2f %12.2f %14.0f %12.4f %9.0f%%\n", epsilon,
                stats::Median(times_ms),
                ed_calls / static_cast<double>(dataset.queries.size()),
                worst_ratio,
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(dataset.queries.size()));
  }

  // Leaf-only: the paper's phase-1 approximate answer.
  {
    std::vector<double> times_ms;
    double worst_ratio = 1.0;
    std::size_t hits = 0;
    for (std::size_t q = 0; q < dataset.queries.size(); ++q) {
      WallTimer timer;
      const auto answer = engine.SearchLeafOnly(dataset.queries.row(q), 1);
      times_ms.push_back(timer.Millis());
      const double ratio =
          exact_distance[q] > 0.0f
              ? static_cast<double>(answer[0].distance) / exact_distance[q]
              : 1.0;
      worst_ratio = std::max(worst_ratio, ratio);
      hits += answer[0].distance <= exact_distance[q] * (1.0f + 1e-5f);
    }
    std::printf("%8s %12.2f %14s %12.4f %9.0f%%\n", "leaf",
                stats::Median(times_ms), "-", worst_ratio,
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(dataset.queries.size()));
  }

  std::printf(
      "\nreading: ε=0 is the exact engine; growing ε trades a bounded "
      "distance ratio for\nfewer real-distance computations. recall@1 "
      "stays high long after exactness is\nformally given up — the "
      "observation motivating SFA-based approximate search as\nfuture "
      "work (paper Section VI).\n");
  return 0;
}
