// Seismic similarity search — the paper's motivating scenario.
//
//   ./examples/seismic_search [--dataset=LenDB] [--n_series=30000]
//
// Seismogram archives are queried with P-wave-aligned windows to find
// events with similar waveforms (template matching). High-frequency
// networks (LenDB-like) are exactly where SAX summarization collapses into
// flat lines and SOFA's SFA shines: this example builds both indexes and
// reports their pruning behaviour side by side.

#include <cstdio>

#include "datagen/datasets.h"
#include "index/tree_index.h"
#include "sax/isax.h"
#include "sax/sax_scheme.h"
#include "sfa/mcb.h"
#include "sfa/tlb.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace sofa;
  Flags flags(argc, argv);
  const std::string dataset_name = flags.GetString("dataset", "LenDB");
  const std::size_t n_series =
      static_cast<std::size_t>(flags.GetInt("n_series", 30000));
  ThreadPool pool(static_cast<std::size_t>(
      flags.GetInt("threads", static_cast<std::int64_t>(HardwareThreads()))));

  datagen::GenerateOptions gen;
  gen.count = n_series;
  gen.num_queries = 20;
  const LabeledDataset dataset =
      datagen::MakeDatasetByName(dataset_name, gen, &pool);
  std::printf("seismic archive: %s (%zu traces × %zu samples)\n",
              dataset.name.c_str(), dataset.data.size(),
              dataset.data.length());

  // Train SFA and build both indexes (SOFA = SFA, MESSI = iSAX).
  sfa::SfaConfig sfa_config;
  const auto sfa_scheme = sfa::TrainSfa(dataset.data, sfa_config, &pool);
  const sax::SaxScheme sax_scheme(dataset.data.length(), 16, 256);
  index::IndexConfig config;
  config.leaf_capacity = 2000;
  const index::TreeIndex sofa_index(&dataset.data, sfa_scheme.get(), config,
                                    &pool);
  const index::TreeIndex messi_index(&dataset.data, &sax_scheme, config,
                                     &pool);

  // Summarization quality: the tighter the lower bound, the better the
  // pruning (paper Section V-E).
  const double tlb_sfa =
      sfa::MeanTlb(*sfa_scheme, dataset.data, dataset.queries);
  const double tlb_sax =
      sfa::MeanTlb(sax_scheme, dataset.data, dataset.queries);
  std::printf("TLB:  SFA %.3f vs iSAX %.3f (higher = tighter bound)\n",
              tlb_sfa, tlb_sax);
  std::printf("mean selected DFT coefficient: %.1f of %zu\n",
              sfa_scheme->MeanSelectedCoefficientIndex(),
              dataset.data.length() / 2);

  // P-wave-aligned template queries against both indexes.
  std::vector<double> sofa_ms;
  std::vector<double> messi_ms;
  for (std::size_t q = 0; q < dataset.queries.size(); ++q) {
    const float* query = dataset.queries.row(q);
    WallTimer timer;
    const Neighbor a = sofa_index.Search1Nn(query);
    sofa_ms.push_back(timer.Millis());
    timer.Reset();
    const Neighbor b = messi_index.Search1Nn(query);
    messi_ms.push_back(timer.Millis());
    if (std::abs(a.distance - b.distance) > 1e-3f) {
      std::printf("MISMATCH on query %zu: %.4f vs %.4f\n", q, a.distance,
                  b.distance);
    }
  }
  std::printf("median query time: SOFA %.2f ms, MESSI %.2f ms (%.1fx)\n",
              stats::Median(sofa_ms), stats::Median(messi_ms),
              stats::Median(messi_ms) / stats::Median(sofa_ms));

  // Show the best match of the first template.
  const auto matches = sofa_index.SearchKnn(dataset.queries.row(0), 3);
  std::printf("top-3 matches of template 0:");
  for (const Neighbor& nb : matches) {
    std::printf("  trace %u (d=%.3f)", nb.id, nb.distance);
  }
  std::printf("\n");
  return 0;
}
